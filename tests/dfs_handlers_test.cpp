// Handler-granularity tests of the DFS execution context: drive the
// PsPIN device with hand-built packets against a fake NIC and inspect
// exactly what the handlers emit (NACK shapes, forwards, parity packets,
// read responses) and how they mutate the NIC-resident DFS state.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dfs/handlers.hpp"
#include "ec/reed_solomon.hpp"
#include "pspin/device.hpp"
#include "sim/simulator.hpp"

namespace nadfs::dfs {
namespace {

/// Minimal NIC: records sends, keeps a byte-array storage target.
class FakeNic : public spin::NicServices {
 public:
  explicit FakeNic(sim::Simulator&) {}

  std::vector<net::Packet> sent;
  Bytes storage = Bytes(1 << 21, 0);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> events;

  sim::Window egress_send(net::Packet pkt, TimePs ready) override {
    sent.push_back(std::move(pkt));
    return {ready, ready + ns(41)};
  }
  TimePs dma_to_storage(std::uint64_t addr, Bytes data, TimePs ready) override {
    std::copy(data.begin(), data.end(), storage.begin() + static_cast<std::ptrdiff_t>(addr));
    return ready + ns(250);
  }
  std::pair<Bytes, TimePs> dma_from_storage(std::uint64_t addr, std::size_t len,
                                            TimePs ready) override {
    return {peek_storage(addr, len), ready + ns(250)};
  }
  Bytes peek_storage(std::uint64_t addr, std::size_t len) override {
    return Bytes(storage.begin() + static_cast<std::ptrdiff_t>(addr),
                 storage.begin() + static_cast<std::ptrdiff_t>(addr + len));
  }
  void notify_host(std::uint64_t code, std::uint64_t arg, TimePs) override {
    events.emplace_back(code, arg);
  }
  net::NodeId node_id() const override { return 42; }
};

struct Rig {
  sim::Simulator sim;
  FakeNic nic{sim};
  pspin::PsPinDevice dev{sim};
  std::shared_ptr<DfsState> state;
  auth::Key128 key{};
  std::unique_ptr<auth::CapabilityAuthority> authority;

  Rig() {
    key[0] = 9;
    DfsConfig cfg;
    cfg.key = key;
    state = std::make_shared<DfsState>(cfg);
    authority = std::make_unique<auth::CapabilityAuthority>(key);
    dev.attach_nic(nic);
    dev.install(make_dfs_context(state));
  }

  auth::Capability cap(auth::Right right = auth::Right::kReadWrite) {
    return authority->mint(1, 1, right, 0, 0, 1 << 20);
  }

  DfsHeader header(OpType op, std::uint64_t greq = 0xABC) {
    DfsHeader h;
    h.op = op;
    h.greq_id = greq;
    h.client_node = 5;
    h.cap = cap();
    return h;
  }

  void deliver(std::vector<net::Packet> pkts) {
    for (auto& p : pkts) {
      p.dst = 42;
      dev.on_packet(std::move(p));
    }
    sim.run();
  }
};

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

TEST(DfsHandlers, PlainWriteStoresDataAndAcks) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x4000;
  wrh.total_len = 5000;
  const Bytes data = random_bytes(5000, 1);
  rig.deliver(build_write_packets(5, 42, 2048, rig.header(OpType::kWrite), wrh, data));

  EXPECT_EQ(rig.nic.peek_storage(0x4000, 5000), data);
  ASSERT_EQ(rig.nic.sent.size(), 1u);
  const auto& ack = rig.nic.sent[0];
  EXPECT_EQ(ack.opcode, net::Opcode::kAck);
  EXPECT_EQ(ack.dst, 5u);           // the client node from the DFS header
  EXPECT_EQ(ack.user_tag, 0xABCu);  // the global request id
  EXPECT_EQ(rig.state->table.in_use(), 0u);
}

TEST(DfsHandlers, NackCarriesRequestIdAndClient) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x4000;
  wrh.total_len = 100;
  auto hdr = rig.header(OpType::kWrite, 0xDEAD);
  hdr.cap.mac ^= 1;
  rig.deliver(build_write_packets(5, 42, 2048, hdr, wrh, Bytes(100, 1)));

  ASSERT_EQ(rig.nic.sent.size(), 1u);
  EXPECT_EQ(rig.nic.sent[0].opcode, net::Opcode::kNack);
  EXPECT_EQ(rig.nic.sent[0].dst, 5u);
  EXPECT_EQ(rig.nic.sent[0].user_tag, 0xDEADu);
  EXPECT_EQ(rig.state->auth_failures, 1u);
  // Host event queue saw the auth failure with the request id.
  ASSERT_FALSE(rig.nic.events.empty());
  EXPECT_EQ(rig.nic.events[0].first, kEvAuthFailure);
  EXPECT_EQ(rig.nic.events[0].second, 0xDEADu);
}

TEST(DfsHandlers, DeniedRequestDropsAllPayloadsWithoutWriting) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x4000;
  wrh.total_len = 8000;
  auto hdr = rig.header(OpType::kWrite);
  hdr.cap.extent_len = 1;  // extent check fails
  rig.deliver(build_write_packets(5, 42, 2048, hdr, wrh, random_bytes(8000, 2)));

  EXPECT_EQ(rig.nic.peek_storage(0x4000, 8000), Bytes(8000, 0));
  EXPECT_TRUE(rig.state->denied.empty());  // CH cleaned the marker
  EXPECT_EQ(rig.state->table.in_use(), 0u);
}

TEST(DfsHandlers, RingForwardRewritesHeadersForChild) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x1000;
  wrh.total_len = 3000;
  wrh.resiliency = Resiliency::kReplication;
  wrh.strategy = ReplStrategy::kRing;
  wrh.virtual_rank = 0;
  wrh.replicas = {{42, 0x1000}, {43, 0x2000}, {44, 0x3000}};
  const Bytes data = random_bytes(3000, 3);
  rig.deliver(build_write_packets(5, 42, 2048, rig.header(OpType::kWrite), wrh, data));

  // Own copy stored.
  EXPECT_EQ(rig.nic.peek_storage(0x1000, 3000), data);
  // Forwards: every packet to the next replica (rank 1, node 43) + ack.
  std::vector<const net::Packet*> forwards;
  for (const auto& p : rig.nic.sent) {
    if (p.opcode == net::Opcode::kRdmaWrite) forwards.push_back(&p);
  }
  ASSERT_EQ(forwards.size(), 2u);  // 3000 B -> 2 packets
  for (const auto* p : forwards) EXPECT_EQ(p->dst, 43u);
  // The forwarded first packet parses as a request for rank 1 at the
  // child's address.
  const auto parsed = parse_request(forwards[0]->data);
  EXPECT_EQ(parsed.wrh.virtual_rank, 1);
  EXPECT_EQ(parsed.wrh.dest_addr, 0x2000u);
  EXPECT_EQ(parsed.wrh.replicas, wrh.replicas);
  EXPECT_EQ(parsed.dfs.greq_id, 0xABCu);
}

TEST(DfsHandlers, PbtRootForwardsToTwoChildren) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x1000;
  wrh.total_len = 1000;
  wrh.resiliency = Resiliency::kReplication;
  wrh.strategy = ReplStrategy::kPbt;
  wrh.virtual_rank = 0;
  wrh.replicas = {{42, 0x1000}, {50, 0}, {51, 0}, {52, 0}};
  rig.deliver(build_write_packets(5, 42, 2048, rig.header(OpType::kWrite), wrh,
                                  random_bytes(1000, 4)));

  std::set<net::NodeId> dsts;
  for (const auto& p : rig.nic.sent) {
    if (p.opcode == net::Opcode::kRdmaWrite) dsts.insert(p.dst);
  }
  EXPECT_EQ(dsts, (std::set<net::NodeId>{50, 51}));  // children 2r+1, 2r+2
}

TEST(DfsHandlers, EcDataNodeEmitsCorrectIntermediateParities) {
  Rig rig;
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x1000;
  wrh.total_len = 4000;
  wrh.resiliency = Resiliency::kErasureCoding;
  wrh.ec_k = 3;
  wrh.ec_m = 2;
  wrh.role = EcRole::kData;
  wrh.data_idx = 1;
  wrh.parity_nodes = {{60, 0x8000}, {61, 0x9000}};
  const Bytes chunk = random_bytes(4000, 5);
  rig.deliver(build_write_packets(5, 42, 2048, rig.header(OpType::kWrite), wrh, chunk));

  // Reassemble each parity stream and compare against the reference
  // intermediate encode of this chunk.
  ec::ReedSolomon rs(3, 2);
  const auto expect = rs.encode_intermediate(1, chunk);
  for (unsigned p = 0; p < 2; ++p) {
    Bytes stream(4000, 0);
    std::size_t covered = 0;
    for (const auto& pkt : rig.nic.sent) {
      if (pkt.opcode != net::Opcode::kRdmaWrite || pkt.dst != 60 + p) continue;
      std::size_t skip = 0;
      if (pkt.first()) {
        skip = parse_request(pkt.data).header_bytes;
        // Forwarded header says: parity role, parity address.
        const auto parsed = parse_request(pkt.data);
        EXPECT_EQ(parsed.wrh.role, EcRole::kParity);
        EXPECT_EQ(parsed.wrh.dest_addr, wrh.parity_nodes[p].addr);
      }
      std::copy(pkt.data.begin() + static_cast<std::ptrdiff_t>(skip), pkt.data.end(),
                stream.begin() + static_cast<std::ptrdiff_t>(pkt.raddr));
      covered += pkt.data.size() - skip;
    }
    EXPECT_EQ(covered, 4000u);
    EXPECT_EQ(stream, expect[p]) << "parity stream " << p;
  }
}

TEST(DfsHandlers, EcParityNodeAggregatesAndAcksOnce) {
  Rig rig;
  // Two data-node streams (k=2) feeding one parity node (this device).
  const Bytes s0 = random_bytes(3000, 6);
  const Bytes s1 = random_bytes(3000, 7);
  for (unsigned d = 0; d < 2; ++d) {
    WriteRequestHeader wrh;
    wrh.dest_addr = 0xA000;
    wrh.total_len = 3000;
    wrh.resiliency = Resiliency::kErasureCoding;
    wrh.ec_k = 2;
    wrh.ec_m = 1;
    wrh.role = EcRole::kParity;
    wrh.data_idx = static_cast<std::uint8_t>(d);
    wrh.parity_nodes = {{42, 0xA000}};
    auto pkts =
        build_write_packets(static_cast<net::NodeId>(10 + d), 42, 2048,
                            rig.header(OpType::kWrite), wrh, d == 0 ? s0 : s1);
    rig.deliver(std::move(pkts));
  }

  Bytes expect(3000);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>(s0[i] ^ s1[i]);
  }
  EXPECT_EQ(rig.nic.peek_storage(0xA000, 3000), expect);
  // Exactly ONE ack for the whole parity write (after the k-th stream).
  unsigned acks = 0;
  for (const auto& p : rig.nic.sent) acks += p.opcode == net::Opcode::kAck;
  EXPECT_EQ(acks, 1u);
  EXPECT_EQ(rig.state->pool.in_use(), 0u);
  EXPECT_TRUE(rig.state->agg.empty());
}

TEST(DfsHandlers, ReadStreamsExtentAsResponsePackets) {
  Rig rig;
  const Bytes data = random_bytes(5000, 8);
  std::copy(data.begin(), data.end(), rig.nic.storage.begin() + 0x2000);

  ReadRequestHeader rrh;
  rrh.src_addr = 0x2000;
  rrh.len = 5000;
  rig.deliver(build_read_packets(5, 42, rig.header(OpType::kRead, 0x77), rrh));

  Bytes got(5000, 0);
  unsigned resp = 0;
  for (const auto& p : rig.nic.sent) {
    if (p.opcode != net::Opcode::kRdmaReadResp) continue;
    ++resp;
    EXPECT_EQ(p.dst, 5u);
    EXPECT_EQ(p.user_tag, 0x77u);
    std::copy(p.data.begin(), p.data.end(),
              got.begin() + static_cast<std::ptrdiff_t>(p.seq) * 2048);
  }
  EXPECT_EQ(resp, 3u);  // ceil(5000/2048)
  EXPECT_EQ(got, data);
}

TEST(DfsHandlers, ReadRejectedWithoutReadRight) {
  Rig rig;
  ReadRequestHeader rrh;
  rrh.src_addr = 0;
  rrh.len = 100;
  auto hdr = rig.header(OpType::kRead);
  hdr.cap = rig.authority->mint(1, 1, auth::Right::kWrite, 0, 0, 1 << 20);  // write-only
  rig.deliver(build_read_packets(5, 42, hdr, rrh));
  ASSERT_EQ(rig.nic.sent.size(), 1u);
  EXPECT_EQ(rig.nic.sent[0].opcode, net::Opcode::kNack);
}

TEST(DfsHandlers, AccumulatorPoolExhaustionFallsBackCorrectly) {
  Rig rig;
  // Shrink the pool to zero: every aggregation sequence takes the host path
  // but the final parity must still be correct.
  DfsConfig cfg;
  cfg.key = rig.key;
  cfg.accumulator_pool_bytes = 0;
  rig.state = std::make_shared<DfsState>(cfg);
  rig.dev.uninstall();
  rig.dev.install(make_dfs_context(rig.state));

  const Bytes s0 = random_bytes(2500, 9);
  const Bytes s1 = random_bytes(2500, 10);
  for (unsigned d = 0; d < 2; ++d) {
    WriteRequestHeader wrh;
    wrh.dest_addr = 0xB000;
    wrh.total_len = 2500;
    wrh.resiliency = Resiliency::kErasureCoding;
    wrh.ec_k = 2;
    wrh.ec_m = 1;
    wrh.role = EcRole::kParity;
    wrh.data_idx = static_cast<std::uint8_t>(d);
    wrh.parity_nodes = {{42, 0xB000}};
    rig.deliver(build_write_packets(static_cast<net::NodeId>(10 + d), 42, 2048,
                                    rig.header(OpType::kWrite), wrh, d == 0 ? s0 : s1));
  }
  Bytes expect(2500);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>(s0[i] ^ s1[i]);
  }
  EXPECT_EQ(rig.nic.peek_storage(0xB000, 2500), expect);
  EXPECT_GT(rig.state->agg_fallbacks, 0u);
  // Host was notified of the fallback.
  bool saw = false;
  for (const auto& [code, arg] : rig.nic.events) saw |= code == kEvAccumulatorFallback;
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace nadfs::dfs
