// Model-checked DFS compliance: seeded randomized multi-client op sequences
// executed against the simulated cluster AND an in-memory reference model;
// every completion must agree with the oracle. Each seed runs twice and the
// two runs must produce identical FNV digests (behavioral determinism), and
// the suite sweeps >= 10 seeds so the sequences cover creates, appends,
// overlapping writes, reads, stats, listings, and deletes in many orders.
//
// Failure messages always carry the seed: a broken sequence is replayable
// from the ctest log alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "common/rng.hpp"
#include "services/client.hpp"

namespace nadfs {
namespace {

using dfs::DfsError;
using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::OpCb;
using services::ReadCb;

/// Reference model of one file: what the namespace + storage *should* hold.
struct ModelFile {
  std::uint64_t capacity = 0;
  std::uint64_t length = 0;  ///< logical length (append tail / write high-water)
  Bytes data;                ///< capacity bytes, zero-initialized
  services::FileLayout layout;
  std::optional<auth::Capability> cap[2];  ///< per-client capability
};

struct Model {
  std::map<std::string, ModelFile> live;
  /// Files removed while the run holds their stale layout; reads through
  /// these must fail kNotFound (tombstoned extents).
  std::map<std::string, ModelFile> dead;
};

struct RunResult {
  std::uint64_t digest = 1469598103934665603ull;
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xFF;
      digest *= 1099511628211ull;
    }
  }
  void fold_bytes(const Bytes& b) {
    fold(b.size());
    for (auto x : b) fold(x);
  }
};

constexpr std::uint64_t kCapacity = 16 * KiB;
const char* kNames[] = {"m/a", "m/b", "m/c", "m/d", "m/e", "m/f"};

/// One seeded randomized run; gtest assertions fire inside (ASSERTs need a
/// void function, so the digest comes back through `out`). The caller wraps
/// us in SCOPED_TRACE with the seed.
void run_model(std::uint64_t seed, unsigned ops, std::uint64_t* out) {
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0);
  Client c1(cluster, 1);
  Client* clients[2] = {&c0, &c1};

  Rng rng(seed);
  Model model;
  RunResult result;

  for (unsigned step = 0; step < ops; ++step) {
    const std::string name = kNames[rng.next_below(std::size(kNames))];
    const unsigned who = static_cast<unsigned>(rng.next_below(2));
    Client& client = *clients[who];
    const unsigned op = static_cast<unsigned>(rng.next_below(100));
    result.fold(step);
    result.fold(op);

    if (op < 15) {  // ---- create
      const auto err = client.create(name, kCapacity, {});
      const auto expect = model.live.count(name) ? DfsError::kExists : DfsError::kOk;
      ASSERT_EQ(err, expect) << "create " << name << " at step " << step;
      if (err == DfsError::kOk) {
        ModelFile f;
        f.capacity = kCapacity;
        f.data.assign(kCapacity, 0);
        f.layout = *cluster.metadata().lookup(name);
        for (unsigned c = 0; c < 2; ++c) {
          f.cap[c] = cluster.metadata().grant(clients[c]->client_id(), f.layout,
                                              auth::Right::kReadWrite);
        }
        model.dead.erase(name);  // recreate revives the name with fresh extents
        model.live.emplace(name, std::move(f));
      }
      result.fold(static_cast<std::uint64_t>(err));
      continue;
    }

    if (op < 30) {  // ---- append
      auto it = model.live.find(name);
      const auto len = 1 + rng.next_below(2048);
      Bytes payload(static_cast<std::size_t>(len),
                    static_cast<std::uint8_t>(rng.next_below(255) + 1));
      if (it == model.live.end()) {
        // No capability either; exercise the metadata miss with any cap.
        if (model.live.empty()) continue;
        const auto& any = model.live.begin()->second;
        DfsError err = DfsError::kOk;
        client.append(name, *any.cap[who], std::move(payload),
                      OpCb([&](DfsError e, TimePs) { err = e; }));
        cluster.sim().run();
        ASSERT_EQ(err, DfsError::kNotFound) << "append ghost " << name << " step " << step;
        result.fold(static_cast<std::uint64_t>(err));
        continue;
      }
      ModelFile& f = it->second;
      DfsError err = DfsError::kTimeout;
      client.append(name, *f.cap[who], payload, OpCb([&](DfsError e, TimePs) { err = e; }));
      cluster.sim().run();
      if (f.length + len > f.capacity) {
        ASSERT_EQ(err, DfsError::kBadArg) << "over-capacity append " << name << " step " << step;
      } else {
        ASSERT_EQ(err, DfsError::kOk) << "append " << name << " step " << step;
        std::copy(payload.begin(), payload.end(),
                  f.data.begin() + static_cast<std::ptrdiff_t>(f.length));
        f.length += len;
      }
      result.fold(static_cast<std::uint64_t>(err));
      continue;
    }

    if (op < 45) {  // ---- write_at
      auto it = model.live.find(name);
      if (it == model.live.end()) continue;
      ModelFile& f = it->second;
      const auto len = 1 + rng.next_below(2048);
      const auto offset = rng.next_below(f.capacity - len + 1);
      Bytes payload(static_cast<std::size_t>(len),
                    static_cast<std::uint8_t>(rng.next_below(255) + 1));
      DfsError err = DfsError::kTimeout;
      client.write_at(f.layout, *f.cap[who], offset, payload,
                      OpCb([&](DfsError e, TimePs) { err = e; }));
      cluster.sim().run();
      ASSERT_EQ(err, DfsError::kOk) << "write_at " << name << " step " << step;
      std::copy(payload.begin(), payload.end(),
                f.data.begin() + static_cast<std::ptrdiff_t>(offset));
      // Layout-based writes bypass the namespace, so the logical length
      // (the append tail) does not move — only append_reserve advances it.
      result.fold(static_cast<std::uint64_t>(err));
      continue;
    }

    if (op < 65) {  // ---- read_at (live) or read through a stale layout (dead)
      auto dead = model.dead.find(name);
      if (dead != model.dead.end() && model.live.count(name) == 0) {
        ModelFile& f = dead->second;
        DfsError err = DfsError::kOk;
        client.read(f.layout, *f.cap[who], 1024,
                    ReadCb([&](DfsError e, Bytes d, TimePs) {
                      err = e;
                      EXPECT_TRUE(d.empty());
                    }));
        cluster.sim().run();
        ASSERT_EQ(err, DfsError::kNotFound)
            << "read of deleted " << name << " step " << step;
        result.fold(static_cast<std::uint64_t>(err));
        continue;
      }
      auto it = model.live.find(name);
      if (it == model.live.end()) continue;
      ModelFile& f = it->second;
      const auto len = 1 + rng.next_below(4096);
      const auto offset = rng.next_below(f.capacity - len + 1);
      DfsError err = DfsError::kTimeout;
      Bytes got;
      client.read_at(f.layout, *f.cap[who], offset, static_cast<std::uint32_t>(len),
                     ReadCb([&](DfsError e, Bytes d, TimePs) {
                       err = e;
                       got = std::move(d);
                     }));
      cluster.sim().run();
      ASSERT_EQ(err, DfsError::kOk) << "read_at " << name << " step " << step;
      const Bytes want(f.data.begin() + static_cast<std::ptrdiff_t>(offset),
                       f.data.begin() + static_cast<std::ptrdiff_t>(offset + len));
      ASSERT_EQ(got, want) << "read_at data mismatch on " << name << " step " << step;
      result.fold_bytes(got);
      continue;
    }

    if (op < 80) {  // ---- stat + list (control plane, completes inline)
      const auto info = client.stat(name);
      auto it = model.live.find(name);
      ASSERT_EQ(info.exists, it != model.live.end()) << "stat " << name << " step " << step;
      if (it != model.live.end()) {
        ASSERT_EQ(info.length, it->second.length) << "stat length " << name << " step " << step;
        ASSERT_EQ(info.size, it->second.capacity) << "stat size " << name << " step " << step;
      }
      std::vector<std::string> want;
      for (const auto& [n, _] : model.live) want.push_back(n);
      ASSERT_EQ(client.list("m/"), want) << "list at step " << step;
      result.fold(info.exists ? 1 : 0);
      result.fold(info.length);
      continue;
    }

    // ---- remove
    auto it = model.live.find(name);
    if (it == model.live.end()) {
      if (model.live.empty()) continue;
      const auto& any = model.live.begin()->second;
      DfsError err = DfsError::kOk;
      client.remove(name, *any.cap[who], OpCb([&](DfsError e, TimePs) { err = e; }));
      cluster.sim().run();
      ASSERT_EQ(err, DfsError::kNotFound) << "remove ghost " << name << " step " << step;
      result.fold(static_cast<std::uint64_t>(err));
      continue;
    }
    DfsError err = DfsError::kTimeout;
    client.remove(name, *it->second.cap[who], OpCb([&](DfsError e, TimePs) { err = e; }));
    cluster.sim().run();
    ASSERT_EQ(err, DfsError::kOk) << "remove " << name << " step " << step;
    model.dead.insert_or_assign(name, std::move(it->second));
    model.live.erase(it);
    result.fold(static_cast<std::uint64_t>(err));
  }

  // Quiesce: the randomized run left no orphaned request state behind.
  EXPECT_EQ(c0.tracker().pending_count(), 0u);
  EXPECT_EQ(c1.tracker().pending_count(), 0u);
  EXPECT_EQ(c0.node().nic().pending_read_count(), 0u);
  EXPECT_EQ(c1.node().nic().pending_read_count(), 0u);
  result.fold(cluster.sim().executed_events());
  *out = result.digest;
}

TEST(DfsModel, RandomizedSequencesMatchOracleAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("NADFS model seed " + std::to_string(seed));
    std::uint64_t first = 0, second = 0;
    run_model(seed, 120, &first);
    if (::testing::Test::HasFatalFailure()) return;
    run_model(seed, 120, &second);
    EXPECT_EQ(first, second) << "same-seed replay diverged (seed " << seed << ")";
  }
}

TEST(DfsModel, DigestIsSeedSensitive) {
  // Sanity on the determinism check itself: the digest reflects behavior,
  // so different seeds (different sequences) must not collide here.
  std::uint64_t a = 0, b = 0;
  run_model(101, 60, &a);
  run_model(202, 60, &b);
  EXPECT_NE(a, b);
}

TEST(DfsModel, DirectedDeleteReadSequenceAgreesWithOracle) {
  // The smallest interesting sequence, spelled out: create -> write ->
  // remove -> read (kNotFound) -> recreate -> read (zeros again).
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0);
  ASSERT_EQ(c0.create("m/x", kCapacity, {}), DfsError::kOk);
  auto layout = *cluster.metadata().lookup("m/x");
  auto cap = cluster.metadata().grant(c0.client_id(), layout, auth::Right::kReadWrite);

  DfsError err = DfsError::kTimeout;
  c0.write(layout, cap, Bytes(kCapacity, 0xEE), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  ASSERT_EQ(err, DfsError::kOk);
  c0.remove("m/x", cap, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  ASSERT_EQ(err, DfsError::kOk);
  err = DfsError::kOk;
  c0.read(layout, cap, 1024, ReadCb([&](DfsError e, Bytes, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);

  ASSERT_EQ(c0.create("m/x", kCapacity, {}), DfsError::kOk);
  layout = *cluster.metadata().lookup("m/x");
  cap = cluster.metadata().grant(c0.client_id(), layout, auth::Right::kReadWrite);
  Bytes got;
  c0.read(layout, cap, 1024, ReadCb([&](DfsError e, Bytes d, TimePs) {
            err = e;
            got = std::move(d);
          }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  EXPECT_EQ(got, Bytes(1024, 0x00));  // fresh object, fresh zeros
}

}  // namespace
}  // namespace nadfs
