// DFS op-surface compliance suite.
//
// Exercises the full name-based op surface (create/delete/stat/append/list)
// and the extent primitives (trim/stat_extent) against the typed wire-error
// contract from dfs/wire.hpp: every failure carries a DfsError, never an
// ambiguous sentinel. The same assertions run against both data-plane twins
// where they differ — sPIN-offloaded handlers and the host-CPU service.
#include <gtest/gtest.h>

#include <algorithm>

#include "services/client.hpp"
#include "services/host_dfs.hpp"

namespace nadfs {
namespace {

using dfs::DfsError;
using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;
using services::OpCb;
using services::ReadCb;

Bytes fill(std::size_t n, std::uint8_t v) { return Bytes(n, v); }

// ------------------------------------------------------------- create

TEST(DfsOps, CreateThenCreateReportsExists) {
  Cluster cluster;
  Client client(cluster, 0);
  EXPECT_EQ(client.create("a/obj", 4 * KiB, {}), DfsError::kOk);
  EXPECT_EQ(client.create("a/obj", 4 * KiB, {}), DfsError::kExists);
  // The collision did not clobber the original entry.
  EXPECT_NE(cluster.metadata().lookup("a/obj"), nullptr);
}

TEST(DfsOps, CreateRejectsBadPolicyAsBadArg) {
  Cluster cluster;
  Client client(cluster, 0);
  FilePolicy striped_repl;  // striping composes only with plain layouts
  striped_repl.resiliency = dfs::Resiliency::kReplication;
  striped_repl.repl_k = 2;
  striped_repl.stripe_count = 4;
  EXPECT_EQ(client.create("bad", 64 * KiB, striped_repl), DfsError::kBadArg);
  EXPECT_EQ(cluster.metadata().lookup("bad"), nullptr);
  // A rejected create leaves the name free.
  EXPECT_EQ(client.create("bad", 64 * KiB, {}), DfsError::kOk);
}

TEST(DfsOps, ListIsSortedAndPrefixFiltered) {
  Cluster cluster;
  Client client(cluster, 0);
  for (const char* name : {"tenant/b", "tenant/a", "other/z", "tenant/c"}) {
    ASSERT_EQ(client.create(name, 4 * KiB, {}), DfsError::kOk);
  }
  const auto under = client.list("tenant/");
  EXPECT_EQ(under, (std::vector<std::string>{"tenant/a", "tenant/b", "tenant/c"}));
  const auto all = client.list("");
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

// ------------------------------------------------------------- stat/append

TEST(DfsOps, StatUnknownNameDoesNotExist) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto info = client.stat("ghost");
  EXPECT_FALSE(info.exists);
  EXPECT_EQ(info.length, 0u);
}

TEST(DfsOps, StatReflectsLengthAfterAppend) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 64 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  EXPECT_EQ(client.stat("f").length, 0u);
  DfsError err = DfsError::kTimeout;
  client.append("f", cap, fill(1000, 0x11), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  EXPECT_EQ(client.stat("f").length, 1000u);

  client.append("f", cap, fill(500, 0x22), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  const auto info = client.stat("f");
  EXPECT_EQ(info.length, 1500u);
  EXPECT_EQ(info.size, 64 * KiB);  // capacity unchanged by appends
}

TEST(DfsOps, AppendToUnknownNameIsNotFound) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("real", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("real");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  DfsError err = DfsError::kOk;
  client.append("ghost", cap, fill(100, 1), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);
}

TEST(DfsOps, AppendPastCapacityIsBadArg) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4096, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  DfsError err = DfsError::kTimeout;
  client.append("f", cap, fill(3000, 1), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  client.append("f", cap, fill(3000, 2), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kBadArg);
  EXPECT_EQ(client.stat("f").length, 3000u);  // failed reserve did not advance the tail
}

TEST(DfsOps, AppendOnErasureCodedLayoutIsBadArg) {
  ClusterConfig cfg;
  cfg.storage_nodes = 6;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy ec;
  ec.resiliency = dfs::Resiliency::kErasureCoding;
  ec.ec_k = 3;
  ec.ec_m = 2;
  ASSERT_EQ(client.create("ec", 48000, ec), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("ec");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  DfsError err = DfsError::kOk;
  client.append("ec", cap, fill(100, 1), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kBadArg);  // EC objects are whole-object writes
}

TEST(DfsOps, ConcurrentAppendsReserveDisjointExtentsInIssueOrder) {
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client a(cluster, 0);
  Client b(cluster, 1);
  ASSERT_EQ(a.create("log", 64 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("log");
  const auto cap_a = cluster.metadata().grant(a.client_id(), layout, auth::Right::kReadWrite);
  const auto cap_b = cluster.metadata().grant(b.client_id(), layout, auth::Right::kReadWrite);

  // Both appends are in flight before the simulator runs: the metadata
  // reservation (not wire arrival order) serializes them.
  const std::uint32_t len = 2048;
  DfsError err_a = DfsError::kTimeout, err_b = DfsError::kTimeout;
  a.append("log", cap_a, fill(len, 0xA1), OpCb([&](DfsError e, TimePs) { err_a = e; }));
  b.append("log", cap_b, fill(len, 0xB2), OpCb([&](DfsError e, TimePs) { err_b = e; }));
  cluster.sim().run();
  EXPECT_EQ(err_a, DfsError::kOk);
  EXPECT_EQ(err_b, DfsError::kOk);
  EXPECT_EQ(a.stat("log").length, 2 * len);

  // Neither append clobbered the other: the bytes sit at the reserved
  // offsets, in reservation order.
  Bytes back;
  a.read(layout, cap_a, 2 * len,
         ReadCb([&](DfsError e, Bytes d, TimePs) {
           EXPECT_EQ(e, DfsError::kOk);
           back = std::move(d);
         }));
  cluster.sim().run();
  ASSERT_EQ(back.size(), 2 * len);
  EXPECT_TRUE(std::all_of(back.begin(), back.begin() + len,
                          [](std::uint8_t v) { return v == 0xA1; }));
  EXPECT_TRUE(std::all_of(back.begin() + len, back.end(),
                          [](std::uint8_t v) { return v == 0xB2; }));
}

// ------------------------------------------------------------- delete

TEST(DfsOps, DeleteUnknownNameIsNotFound) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("real", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("real");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  DfsError err = DfsError::kOk;
  client.remove("ghost", cap, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);
}

TEST(DfsOps, DeleteThenReadFailsTypedNotFound) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto layout = *cluster.metadata().lookup("f");  // keep a copy past the remove
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  bool wrote = false;
  client.write(layout, cap, fill(4 * KiB, 0x5A), OpCb([&](DfsError e, TimePs) {
                 wrote = (e == DfsError::kOk);
               }));
  cluster.sim().run();
  ASSERT_TRUE(wrote);

  DfsError rm = DfsError::kTimeout;
  client.remove("f", cap, OpCb([&](DfsError e, TimePs) { rm = e; }));
  cluster.sim().run();
  EXPECT_EQ(rm, DfsError::kOk);
  EXPECT_FALSE(client.stat("f").exists);

  // The storage extents are tombstoned: a read through the stale layout
  // fails with the typed error, not with a buffer that could pass for data.
  DfsError err = DfsError::kOk;
  bool done = false;
  client.read(layout, cap, 4 * KiB, ReadCb([&](DfsError e, Bytes d, TimePs) {
                done = true;
                err = e;
                EXPECT_TRUE(d.empty());
              }));
  cluster.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(err, DfsError::kNotFound);
}

TEST(DfsOps, DeleteFreesTheNameForRecreate) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  DfsError rm = DfsError::kTimeout;
  client.remove("f", cap, OpCb([&](DfsError e, TimePs) { rm = e; }));
  cluster.sim().run();
  ASSERT_EQ(rm, DfsError::kOk);
  EXPECT_EQ(client.create("f", 8 * KiB, {}), DfsError::kOk);
  EXPECT_EQ(client.stat("f").size, 8 * KiB);
}

// ------------------------------------------------------- typed-error plane

TEST(DfsOps, ZeroLengthReadIsTypedBadArgWithoutWireTraffic) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);

  const auto events_before = cluster.sim().executed_events();
  DfsError err = DfsError::kOk;
  bool done = false;
  client.read(layout, cap, 0, ReadCb([&](DfsError e, Bytes, TimePs) {
                done = true;
                err = e;
              }));
  EXPECT_TRUE(done);  // completes inline: nothing to wait for
  EXPECT_EQ(err, DfsError::kBadArg);
  cluster.sim().run();
  EXPECT_EQ(cluster.sim().executed_events(), events_before);  // nothing hit the wire
}

TEST(DfsOps, ZeroLengthLegacyReadStillThrows) {
  // The legacy (Bytes, TimePs) callback signals failure with an empty
  // buffer; a zero-length read would make that ambiguous, so it keeps
  // throwing. The typed overload reports kBadArg instead (test above).
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);
  EXPECT_THROW(client.read(layout, cap, 0, [](Bytes, TimePs) {}), std::invalid_argument);
}

TEST(DfsOps, DeniedWriteCarriesTypedDenied) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto ro = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);
  DfsError err = DfsError::kOk;
  client.write(layout, ro, fill(4 * KiB, 1), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kDenied);
}

// Regression for the empty-buffer failure sentinel: a genuinely all-zero
// object used to read back as a buffer of zeros while a *failed* read
// returned an empty buffer — distinguishable only by length, and not at all
// for zero-length requests. With typed completions the two cases differ in
// the error code, with the payload intact in the success case.
TEST(DfsOps, EmptyObjectReadIsOkFailedReadIsTyped) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("zeros", 4 * KiB, {}), DfsError::kOk);
  const auto layout = *cluster.metadata().lookup("zeros");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  bool wrote = false;
  client.write(layout, cap, fill(4 * KiB, 0x00), OpCb([&](DfsError e, TimePs) {
                 wrote = (e == DfsError::kOk);
               }));
  cluster.sim().run();
  ASSERT_TRUE(wrote);

  // Success: kOk with 4 KiB of zeros — the zeros are data, not a sentinel.
  DfsError err = DfsError::kTimeout;
  Bytes data;
  client.read(layout, cap, 4 * KiB, ReadCb([&](DfsError e, Bytes d, TimePs) {
                err = e;
                data = std::move(d);
              }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  ASSERT_EQ(data.size(), 4 * KiB);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(), [](std::uint8_t v) { return v == 0; }));

  // Failure (tombstoned extent): typed kNotFound, never a zero buffer.
  DfsError trim = DfsError::kTimeout;
  client.trim_extent(layout.targets[0], cap, layout.size,
                     OpCb([&](DfsError e, TimePs) { trim = e; }));
  cluster.sim().run();
  ASSERT_EQ(trim, DfsError::kOk);
  err = DfsError::kOk;
  client.read(layout, cap, 4 * KiB, ReadCb([&](DfsError e, Bytes d, TimePs) {
                err = e;
                EXPECT_TRUE(d.empty());
              }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);
}

// --------------------------------------------------- extent primitives

TEST(DfsOps, TrimTombstonesAndWriteRevivesTheExtent) {
  Cluster cluster;
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  const auto& coord = layout.targets[0];

  DfsError err = DfsError::kTimeout;
  client.stat_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);  // live before any trim

  client.trim_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  ASSERT_EQ(err, DfsError::kOk);
  client.stat_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);  // tombstoned

  // A fresh write hole-punches the tombstone; the extent reads again.
  bool wrote = false;
  client.write_extent(coord, cap, fill(4 * KiB, 0x7E), OpCb([&](DfsError e, TimePs) {
                        wrote = (e == DfsError::kOk);
                      }));
  cluster.sim().run();
  ASSERT_TRUE(wrote);
  client.stat_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  Bytes back;
  client.read(layout, cap, 4 * KiB, ReadCb([&](DfsError e, Bytes d, TimePs) {
                EXPECT_EQ(e, DfsError::kOk);
                back = std::move(d);
              }));
  cluster.sim().run();
  EXPECT_EQ(back, fill(4 * KiB, 0x7E));
}

// ------------------------------------------------- host-CPU service twin

TEST(DfsOps, HostPathMatchesTypedErrorContract) {
  ClusterConfig cfg;
  cfg.install_dfs = false;  // host-CPU DFS service instead of NIC handlers
  Cluster cluster(cfg);
  std::vector<std::unique_ptr<services::HostDfsService>> host;
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    host.push_back(std::make_unique<services::HostDfsService>(cluster.storage_node(i), cfg.dfs));
  }
  Client client(cluster, 0);
  ASSERT_EQ(client.create("f", 4 * KiB, {}), DfsError::kOk);
  const auto& layout = *cluster.metadata().lookup("f");
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  const auto& coord = layout.targets[0];

  // write -> stat_extent live -> trim -> stat/read kNotFound, same contract
  // as the offloaded path.
  DfsError err = DfsError::kTimeout;
  client.write(layout, cap, fill(4 * KiB, 0x33), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  ASSERT_EQ(err, DfsError::kOk);
  client.stat_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kOk);
  client.trim_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  ASSERT_EQ(err, DfsError::kOk);
  client.stat_extent(coord, cap, layout.size, OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);
  err = DfsError::kOk;
  client.read(layout, cap, 4 * KiB, ReadCb([&](DfsError e, Bytes, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kNotFound);

  // Typed denial on the host path too.
  const auto ro = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);
  err = DfsError::kOk;
  client.write(layout, ro, fill(4 * KiB, 1), OpCb([&](DfsError e, TimePs) { err = e; }));
  cluster.sim().run();
  EXPECT_EQ(err, DfsError::kDenied);
}

}  // namespace
}  // namespace nadfs
