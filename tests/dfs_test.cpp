// Unit tests for the DFS core: wire codecs (Fig. 3), broadcast tree
// helpers, request table, and accumulator pool.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "dfs/handlers.hpp"
#include "dfs/req_table.hpp"
#include "dfs/wire.hpp"

namespace nadfs::dfs {
namespace {

auth::Capability test_cap() {
  auth::Key128 key{};
  key[0] = 1;
  auth::CapabilityAuthority authority(key);
  return authority.mint(7, 42, auth::Right::kWrite, us(10), 0x1000, 0x9000);
}

DfsHeader test_header(OpType op = OpType::kWrite) {
  DfsHeader h;
  h.op = op;
  h.greq_id = 0xABCDEF0123ull;
  h.client_node = 3;
  h.cap = test_cap();
  return h;
}

// --------------------------------------------------------------- codecs

TEST(Wire, DfsHeaderRoundTrip) {
  const auto h = test_header();
  Bytes buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), DfsHeader::kWireBytes);
  ByteReader r(buf);
  const auto got = DfsHeader::deserialize(r);
  EXPECT_EQ(got.op, h.op);
  EXPECT_EQ(got.greq_id, h.greq_id);
  EXPECT_EQ(got.client_node, h.client_node);
  EXPECT_EQ(got.cap.mac, h.cap.mac);
}

TEST(Wire, WrhPlainRoundTrip) {
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x2000;
  wrh.total_len = 12345;
  Bytes buf;
  ByteWriter w(buf);
  wrh.serialize(w);
  EXPECT_EQ(buf.size(), wrh.wire_bytes());
  ByteReader r(buf);
  const auto got = WriteRequestHeader::deserialize(r);
  EXPECT_EQ(got.dest_addr, wrh.dest_addr);
  EXPECT_EQ(got.total_len, wrh.total_len);
  EXPECT_EQ(got.resiliency, Resiliency::kNone);
}

TEST(Wire, WrhReplicationRoundTrip) {
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x2000;
  wrh.total_len = 999;
  wrh.resiliency = Resiliency::kReplication;
  wrh.strategy = ReplStrategy::kPbt;
  wrh.virtual_rank = 2;
  wrh.replicas = {{0, 0x10}, {1, 0x20}, {2, 0x30}, {5, 0x40}};
  Bytes buf;
  ByteWriter w(buf);
  wrh.serialize(w);
  EXPECT_EQ(buf.size(), wrh.wire_bytes());
  ByteReader r(buf);
  const auto got = WriteRequestHeader::deserialize(r);
  EXPECT_EQ(got.strategy, ReplStrategy::kPbt);
  EXPECT_EQ(got.virtual_rank, 2);
  EXPECT_EQ(got.replicas, wrh.replicas);
}

TEST(Wire, WrhErasureCodingRoundTrip) {
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x3000;
  wrh.total_len = 4096;
  wrh.resiliency = Resiliency::kErasureCoding;
  wrh.ec_k = 6;
  wrh.ec_m = 3;
  wrh.role = EcRole::kParity;
  wrh.data_idx = 4;
  wrh.parity_nodes = {{7, 0x100}, {8, 0x200}, {9, 0x300}};
  Bytes buf;
  ByteWriter w(buf);
  wrh.serialize(w);
  ByteReader r(buf);
  const auto got = WriteRequestHeader::deserialize(r);
  EXPECT_EQ(got.ec_k, 6);
  EXPECT_EQ(got.ec_m, 3);
  EXPECT_EQ(got.role, EcRole::kParity);
  EXPECT_EQ(got.data_idx, 4);
  EXPECT_EQ(got.parity_nodes, wrh.parity_nodes);
}

TEST(Wire, ParseRequestWrite) {
  const auto hdr = test_header();
  WriteRequestHeader wrh;
  wrh.dest_addr = 0x1234;
  wrh.total_len = 77;
  Bytes buf;
  ByteWriter w(buf);
  hdr.serialize(w);
  wrh.serialize(w);
  const Bytes data{9, 9, 9};
  w.put_bytes(data);

  const auto parsed = parse_request(buf);
  EXPECT_EQ(parsed.dfs.greq_id, hdr.greq_id);
  EXPECT_EQ(parsed.wrh.dest_addr, 0x1234u);
  EXPECT_EQ(parsed.header_bytes, buf.size() - data.size());
}

TEST(Wire, ParseRequestRead) {
  const auto hdr = test_header(OpType::kRead);
  ReadRequestHeader rrh;
  rrh.src_addr = 0x4000;
  rrh.len = 512;
  Bytes buf;
  ByteWriter w(buf);
  hdr.serialize(w);
  rrh.serialize(w);
  const auto parsed = parse_request(buf);
  EXPECT_EQ(parsed.dfs.op, OpType::kRead);
  EXPECT_EQ(parsed.rrh.src_addr, 0x4000u);
  EXPECT_EQ(parsed.rrh.len, 512u);
}

TEST(Wire, ParseTruncatedThrows) {
  Bytes buf{1, 2, 3};
  EXPECT_THROW(parse_request(buf), std::out_of_range);
}

// ----------------------------------------------------- packet building

class BuildWritePackets : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BuildWritePackets, CoversDataExactly) {
  const std::size_t size = GetParam();
  const std::size_t mtu = 2048;
  Rng rng(size);
  Bytes data(size);
  for (auto& b : data) b = rng.next_byte();

  WriteRequestHeader wrh;
  wrh.dest_addr = 0;
  wrh.total_len = size;
  const auto pkts = build_write_packets(1, 2, mtu, test_header(), wrh, data);

  ASSERT_FALSE(pkts.empty());
  // Only the first packet carries DFS headers (Fig. 3).
  const auto parsed = parse_request(pkts[0].data);
  EXPECT_EQ(parsed.wrh.total_len, size);

  // Reassemble the payload from (raddr, bytes) and compare.
  Bytes reassembled(size, 0);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const auto& p = pkts[i];
    EXPECT_LE(p.data.size(), mtu);
    EXPECT_EQ(p.seq, i);
    EXPECT_EQ(p.pkt_count, pkts.size());
    EXPECT_EQ(p.msg_id, test_header().greq_id);
    const std::size_t skip = p.first() ? parsed.header_bytes : 0;
    const std::size_t n = p.data.size() - skip;
    std::copy(p.data.begin() + static_cast<std::ptrdiff_t>(skip), p.data.end(),
              reassembled.begin() + static_cast<std::ptrdiff_t>(p.raddr));
    covered += n;
  }
  EXPECT_EQ(covered, size);
  EXPECT_EQ(reassembled, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BuildWritePackets,
                         ::testing::Values(0, 1, 100, 1900, 1950, 2048, 4096, 10000, 65536),
                         [](const ::testing::TestParamInfo<std::size_t>& pinfo) {
                           return "bytes" + std::to_string(pinfo.param);
                         });

TEST(Wire, ReadPacketIsSinglePacket) {
  ReadRequestHeader rrh;
  rrh.src_addr = 8;
  rrh.len = 100;
  const auto pkts = build_read_packets(1, 2, test_header(OpType::kRead), rrh);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_TRUE(pkts[0].first());
  EXPECT_TRUE(pkts[0].last());
}

// -------------------------------------------------------- broadcast tree

TEST(Broadcast, RingChildren) {
  EXPECT_EQ(broadcast_children(0, 4, ReplStrategy::kRing), (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(broadcast_children(2, 4, ReplStrategy::kRing), (std::vector<std::uint8_t>{3}));
  EXPECT_TRUE(broadcast_children(3, 4, ReplStrategy::kRing).empty());
  EXPECT_TRUE(broadcast_children(0, 1, ReplStrategy::kRing).empty());
}

TEST(Broadcast, PbtChildren) {
  EXPECT_EQ(broadcast_children(0, 7, ReplStrategy::kPbt), (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(broadcast_children(1, 7, ReplStrategy::kPbt), (std::vector<std::uint8_t>{3, 4}));
  EXPECT_EQ(broadcast_children(2, 6, ReplStrategy::kPbt), (std::vector<std::uint8_t>{5}));
  EXPECT_TRUE(broadcast_children(3, 7, ReplStrategy::kPbt).empty());
}

class BroadcastCoverage
    : public ::testing::TestWithParam<std::tuple<ReplStrategy, std::uint8_t>> {};

TEST_P(BroadcastCoverage, EveryRankReachedExactlyOnce) {
  // The tree rooted at rank 0 must reach ranks 1..k-1 exactly once — the
  // invariant that makes the client-driven broadcast write each replica
  // exactly once.
  const auto [strategy, k] = GetParam();
  std::vector<int> reached(k, 0);
  reached[0] = 1;
  for (std::uint8_t r = 0; r < k; ++r) {
    for (const auto child : broadcast_children(r, k, strategy)) {
      ASSERT_LT(child, k);
      reached[child]++;
    }
  }
  for (unsigned r = 0; r < k; ++r) EXPECT_EQ(reached[r], 1) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Trees, BroadcastCoverage,
    ::testing::Combine(::testing::Values(ReplStrategy::kRing, ReplStrategy::kPbt),
                       ::testing::Values(std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{3},
                                         std::uint8_t{5}, std::uint8_t{8}, std::uint8_t{16})),
    [](const ::testing::TestParamInfo<std::tuple<ReplStrategy, std::uint8_t>>& pinfo) {
      return std::string(repl_strategy_name(std::get<0>(pinfo.param))) + "_k" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(Broadcast, DepthFormulas) {
  EXPECT_EQ(broadcast_depth(1, ReplStrategy::kRing), 0u);
  EXPECT_EQ(broadcast_depth(4, ReplStrategy::kRing), 3u);
  EXPECT_EQ(broadcast_depth(8, ReplStrategy::kRing), 7u);
  EXPECT_EQ(broadcast_depth(2, ReplStrategy::kPbt), 1u);
  EXPECT_EQ(broadcast_depth(4, ReplStrategy::kPbt), 2u);
  EXPECT_EQ(broadcast_depth(8, ReplStrategy::kPbt), 3u);
}

// ----------------------------------------------------------- req table

TEST(ReqTable, CapacityMatchesPaper) {
  // 6 MiB at 77 B per descriptor -> ~82 K concurrent writes (§III-B.2).
  ReqTable table(6 * MiB);
  EXPECT_EQ(table.capacity(), (6 * MiB) / 77);
  EXPECT_GT(table.capacity(), 81000u);
  EXPECT_LT(table.capacity(), 82000u);
}

TEST(ReqTable, AllocReleaseRecycles) {
  ReqTable table(77 * 2);  // two slots
  auto a = table.alloc();
  auto b = table.alloc();
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(table.alloc().has_value());
  EXPECT_EQ(table.denials(), 1u);
  table.release(*a);
  auto c = table.alloc();
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);  // slot recycled
}

TEST(ReqTable, DoubleReleaseIsIgnored) {
  // Regression: a second release of the same slot used to push it onto the
  // free list twice (the same descriptor handed to two writes) and
  // underflow in_use_ (a size_t), wrecking high_water_.
  ReqTable table(77 * 2);
  auto a = table.alloc();
  auto b = table.alloc();
  ASSERT_TRUE(a && b);
  table.release(*a);
  EXPECT_EQ(table.in_use(), 1u);
  table.release(*a);  // double release: ignored + counted
  EXPECT_EQ(table.in_use(), 1u);
  EXPECT_EQ(table.bad_releases(), 1u);
  // The freed slot is handed out exactly once.
  auto c = table.alloc();
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);
  EXPECT_FALSE(table.alloc().has_value());
  EXPECT_EQ(table.in_use(), 2u);
  EXPECT_EQ(table.high_water(), 2u);
}

TEST(ReqTable, ReleaseOfNeverIssuedSlotIsIgnored) {
  ReqTable table(77 * 4);
  (void)table.alloc();
  table.release(99);  // never allocated
  EXPECT_EQ(table.in_use(), 1u);
  EXPECT_EQ(table.bad_releases(), 1u);
}

TEST(ReqTable, HighWaterTracksPeak) {
  ReqTable table(77 * 8);
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 5; ++i) slots.push_back(*table.alloc());
  EXPECT_EQ(table.high_water(), 5u);
  for (const auto s : slots) table.release(s);
  EXPECT_EQ(table.in_use(), 0u);
  EXPECT_EQ(table.high_water(), 5u);
  (void)table.alloc();
  EXPECT_EQ(table.high_water(), 5u);
}

// ------------------------------------------------------ accumulator pool

TEST(AccumulatorPool, SizedByPacketBuffers) {
  AccumulatorPool pool(1 * MiB, 2048);
  EXPECT_EQ(pool.total(), 512u);
}

TEST(AccumulatorPool, ExhaustionCountsFailures) {
  AccumulatorPool pool(4096, 2048);  // two accumulators
  auto a = pool.alloc(100);
  auto b = pool.alloc(200);
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(pool.alloc(100).has_value());
  EXPECT_EQ(pool.failures(), 1u);
  pool.release(*a);
  EXPECT_TRUE(pool.alloc(100).has_value());
}

TEST(AccumulatorPool, BuffersZeroedOnAlloc) {
  AccumulatorPool pool(4096, 2048);
  auto a = pool.alloc(64);
  pool.buffer(*a)[5] = 0xFF;
  pool.release(*a);
  auto b = pool.alloc(64);
  EXPECT_EQ(*a, *b);  // recycled
  EXPECT_EQ(pool.buffer(*b)[5], 0);
}

TEST(AccumulatorPool, OversizeAllocationIsDenied) {
  // Regression: alloc(len) with len > acc_bytes_ used to hand out a buffer
  // larger than the per-accumulator budget the pool's capacity math
  // (total_ = pool_bytes / acc_bytes) assumes. It must count as a failure
  // so the handler takes the CPU-aggregation fallback.
  AccumulatorPool pool(4096, 2048);
  EXPECT_FALSE(pool.alloc(2049).has_value());
  EXPECT_EQ(pool.failures(), 1u);
  EXPECT_EQ(pool.in_use(), 0u);
  // Exactly acc_bytes is fine.
  EXPECT_TRUE(pool.alloc(2048).has_value());
}

TEST(AccumulatorPool, DoubleReleaseIsIgnored) {
  AccumulatorPool pool(4096, 2048);
  auto a = pool.alloc(64);
  auto b = pool.alloc(64);
  ASSERT_TRUE(a && b);
  pool.release(*a);
  pool.release(*a);
  EXPECT_EQ(pool.in_use(), 1u);
  auto c = pool.alloc(64);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);
  EXPECT_FALSE(pool.alloc(64).has_value());  // pool genuinely full again
}

TEST(AccumulatorPool, ZeroByteAccumulatorPoolIsEmpty) {
  AccumulatorPool pool(0, 2048);
  EXPECT_EQ(pool.total(), 0u);
  EXPECT_FALSE(pool.alloc(10).has_value());
}

}  // namespace
}  // namespace nadfs::dfs
