// GF(2^8) kernel-tier coverage (PR 3):
//
//  - every compiled+supported tier (word64/ssse3/avx2/gfni), constructed as
//    a private Gf256 instance, is bit-exact against the scalar table path
//    on odd/unaligned region lengths, including the fused multi ops;
//  - randomized Reed-Solomon encode/decode round-trips across edge shapes
//    (k=1, m=1, k+m=256) and ragged lengths (1..257 B);
//  - a pinned FNV-1a digest of encode output, so a kernel-tier change can
//    never silently alter encoded bytes.
//
// scripts/check.sh re-runs this suite (and the rest of the EC tests) under
// every supported NADFS_GF_KERNEL value, so the singleton-path tests below
// execute once per tier in CI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ec/gf256.hpp"
#include "ec/reed_solomon.hpp"

namespace nadfs::ec {
namespace {

constexpr Gf256::Kernel kAllTiers[] = {Gf256::Kernel::kScalar, Gf256::Kernel::kWord64,
                                       Gf256::Kernel::kSsse3, Gf256::Kernel::kAvx2,
                                       Gf256::Kernel::kGfni};

std::uint64_t fnv1a(std::uint64_t h, ByteSpan bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

Bytes seeded_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

TEST(EcKernelTiers, SupportedTiersSelectExactly) {
  // A supported tier, explicitly forced, must select itself (its startup
  // self-check passing); an unsupported tier must fall down the ladder to
  // something that runs.
  for (const auto tier : kAllTiers) {
    const auto gf = std::make_unique<Gf256>(tier);
    if (Gf256::kernel_supported(tier)) {
      EXPECT_EQ(gf->kernel(), tier) << Gf256::kernel_name(tier);
    } else {
      std::printf("NOTICE: GF tier '%s' unsupported on this host/build, fallback '%s'\n",
                  Gf256::kernel_name(tier), gf->kernel_name());
      EXPECT_NE(gf->kernel(), tier);
    }
  }
}

TEST(EcKernelTiers, EveryTierBitExactOnOddUnalignedRegions) {
  // All lengths 1..257 x alignment offsets 0..3, random coefficients —
  // straddles every vector width (8/16/32/64) with ragged heads and tails.
  const auto scalar = std::make_unique<Gf256>(Gf256::Kernel::kScalar);
  for (const auto tier : kAllTiers) {
    if (!Gf256::kernel_supported(tier)) continue;
    const auto gf = std::make_unique<Gf256>(tier);
    Rng rng(0xBEEF ^ static_cast<std::uint64_t>(tier));
    for (std::size_t len = 1; len <= 257; ++len) {
      for (std::size_t align = 0; align < 4; align += (len < 40 ? 1 : 3)) {
        const auto coeff = rng.next_byte();
        Bytes src_buf = seeded_bytes(len + align, rng.next());
        Bytes dst_buf = seeded_bytes(len + align, rng.next());
        Bytes ref_buf = dst_buf;
        const ByteSpan src(src_buf.data() + align, len);
        const MutByteSpan dst(dst_buf.data() + align, len);
        const MutByteSpan ref(ref_buf.data() + align, len);

        gf->mul_add(dst, src, coeff);
        scalar->mul_add_scalar(ref, src, coeff);
        ASSERT_EQ(dst_buf, ref_buf) << "mul_add tier=" << gf->kernel_name() << " len=" << len
                                    << " align=" << align << " coeff=" << unsigned(coeff);

        gf->mul_into(dst, src, coeff);
        scalar->mul_into_scalar(ref, src, coeff);
        ASSERT_EQ(dst_buf, ref_buf) << "mul_into tier=" << gf->kernel_name() << " len=" << len
                                    << " align=" << align << " coeff=" << unsigned(coeff);
      }
    }
  }
}

TEST(EcKernelTiers, FusedMultiMatchesPerCoefficientAllTiers) {
  // The fused region-blocked multi ops must equal m independent scalar
  // passes for every tier, across block boundaries (lengths straddling
  // Gf256::kFuseBlockBytes) and m from 1 to 8.
  const auto scalar = std::make_unique<Gf256>(Gf256::Kernel::kScalar);
  const std::size_t lens[] = {1,    7,    64,   257,  2048, Gf256::kFuseBlockBytes - 1,
                              Gf256::kFuseBlockBytes, Gf256::kFuseBlockBytes + 1,
                              3 * Gf256::kFuseBlockBytes + 13};
  for (const auto tier : kAllTiers) {
    if (!Gf256::kernel_supported(tier)) continue;
    const auto gf = std::make_unique<Gf256>(tier);
    Rng rng(0xF00D ^ static_cast<std::uint64_t>(tier));
    for (const std::size_t len : lens) {
      for (unsigned m = 1; m <= 8; m += 3) {
        const Bytes src = seeded_bytes(len, rng.next());
        std::vector<std::uint8_t> coeffs(m);
        for (auto& c : coeffs) c = rng.next_byte();
        std::vector<Bytes> got(m), ref(m);
        std::vector<std::uint8_t*> dsts(m);
        for (unsigned i = 0; i < m; ++i) {
          got[i] = seeded_bytes(len, 77 + i);
          ref[i] = got[i];
          dsts[i] = got[i].data();
        }
        gf->mul_add_multi(dsts.data(), coeffs.data(), m, src);
        for (unsigned i = 0; i < m; ++i) {
          scalar->mul_add_scalar(ref[i], src, coeffs[i]);
          ASSERT_EQ(got[i], ref[i]) << "mul_add_multi tier=" << gf->kernel_name()
                                    << " len=" << len << " m=" << m << " i=" << i;
        }
        gf->mul_into_multi(dsts.data(), coeffs.data(), m, src);
        for (unsigned i = 0; i < m; ++i) {
          scalar->mul_into_scalar(ref[i], src, coeffs[i]);
          ASSERT_EQ(got[i], ref[i]) << "mul_into_multi tier=" << gf->kernel_name()
                                    << " len=" << len << " m=" << m << " i=" << i;
        }
      }
    }
  }
}

TEST(EcKernelTiers, ForcedEnvTierIsHonoredBySingleton) {
  // When scripts/check.sh forces a tier via NADFS_GF_KERNEL, the process
  // singleton must actually run it (the script skips unsupported tiers, so
  // a mismatch here means forcing silently broke).
  const char* env = std::getenv("NADFS_GF_KERNEL");
  if (env == nullptr) {
    GTEST_SKIP() << "NADFS_GF_KERNEL not set";
  }
  const auto forced = Gf256::parse_kernel_name(env);
  ASSERT_TRUE(forced.has_value()) << env;
  if (!Gf256::kernel_supported(*forced)) {
    GTEST_SKIP() << "tier '" << env << "' unsupported on this host/build";
  }
  EXPECT_STREQ(Gf256::instance().kernel_name(), env);
}

struct Shape {
  unsigned k, m;
};

TEST(EcRoundTrip, RandomizedAcrossEdgeShapesAndRaggedLengths) {
  // Encode/decode property test on the shapes the satellite calls out:
  // k=1 (parity-only redundancy), m=1 (single parity), and k+m=256 (the
  // field-size limit), plus the paper's RS(3,2)/RS(6,3)/RS(10,4); chunk
  // lengths are odd/unaligned (1..257 B). Runs under whatever kernel tier
  // NADFS_GF_KERNEL selected — check.sh sweeps all of them.
  const Shape shapes[] = {{1, 1}, {1, 4}, {5, 1}, {3, 2}, {6, 3}, {10, 4}, {252, 4}, {1, 255}};
  Rng rng(20260807);
  for (const auto [k, m] : shapes) {
    ReedSolomon rs(k, m);
    for (const std::size_t len : {std::size_t{1}, std::size_t{3}, std::size_t{127},
                                  std::size_t{129}, std::size_t{257}}) {
      std::vector<Bytes> data(k);
      for (auto& d : data) d = seeded_bytes(len, rng.next());
      const auto parity = rs.encode(data);
      ASSERT_EQ(parity.size(), m);

      // Erase up to m random chunks, decode from a random surviving k-set.
      std::vector<unsigned> idx(k + m);
      for (unsigned i = 0; i < k + m; ++i) idx[i] = i;
      for (unsigned i = static_cast<unsigned>(idx.size()) - 1; i > 0; --i) {
        std::swap(idx[i], idx[rng.next_below(i + 1)]);
      }
      std::vector<std::pair<unsigned, Bytes>> present;
      for (unsigned i = 0; i < k; ++i) {
        const unsigned which = idx[i];
        present.emplace_back(which, which < k ? data[which] : parity[which - k]);
      }
      const auto out = rs.decode(present);
      ASSERT_TRUE(out.has_value()) << "k=" << k << " m=" << m << " len=" << len;
      EXPECT_EQ(*out, data) << "k=" << k << " m=" << m << " len=" << len;
    }
  }
}

TEST(EcRoundTrip, IntermediateFusedPathMatchesFullEncode) {
  // encode_intermediate_into (the zero-copy handler path) aggregated across
  // data nodes must equal the fused full encode, on a ragged length.
  ReedSolomon rs(6, 3);
  Rng rng(99);
  std::vector<Bytes> data(6);
  for (auto& d : data) d = seeded_bytes(2049, rng.next());
  const auto full = rs.encode(data);

  std::vector<Bytes> agg(3, Bytes(2049, 0));
  for (unsigned j = 0; j < 6; ++j) {
    std::vector<Bytes> inter(3, Bytes(2049));
    std::vector<std::uint8_t*> dsts(3);
    for (unsigned i = 0; i < 3; ++i) dsts[i] = inter[i].data();
    rs.encode_intermediate_into(j, data[j], dsts.data());
    for (unsigned i = 0; i < 3; ++i) ReedSolomon::aggregate(agg[i], inter[i]);
  }
  EXPECT_EQ(agg, full);
}

TEST(EcDigestPin, EncodeOutputBytesArePinned) {
  // FNV-1a digests of encode output for fixed seeds, recorded from the
  // scalar reference path. A kernel tier (or encode-loop restructuring)
  // that alters any output byte fails here — run under every tier by
  // scripts/check.sh's matrix.
  struct Pin {
    unsigned k, m;
    std::size_t len;
    std::uint64_t digest;
  };
  const Pin pins[] = {
      {3, 2, 257, 0xca2867d94690aa62ull},
      {6, 3, 2048, 0x5f22c370d07ffa43ull},
      {10, 4, 2049, 0x32b8e2b1db646488ull},
  };
  for (const auto& pin : pins) {
    ReedSolomon rs(pin.k, pin.m);
    std::vector<Bytes> data(pin.k);
    for (unsigned j = 0; j < pin.k; ++j) {
      data[j] = seeded_bytes(pin.len, 0xD1CE5700 + j);
    }
    const auto parity = rs.encode(data);
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& p : parity) h = fnv1a(h, p);
    EXPECT_EQ(h, pin.digest) << "RS(" << pin.k << "," << pin.m << ") len=" << pin.len
                             << " kernel=" << Gf256::instance().kernel_name();
  }
}

}  // namespace
}  // namespace nadfs::ec
