#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "ec/gf256.hpp"
#include "ec/reed_solomon.hpp"

namespace nadfs::ec {
namespace {

// ---------------------------------------------------------------- GF(2^8)

TEST(Gf256, AdditionIsXor) {
  const auto& gf = Gf256::instance();
  EXPECT_EQ(gf.add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf.add(0xFF, 0xFF), 0);
}

TEST(Gf256, MultiplicativeIdentity) {
  const auto& gf = Gf256::instance();
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf.mul(1, static_cast<std::uint8_t>(a)), a);
  }
}

TEST(Gf256, ZeroAnnihilates) {
  const auto& gf = Gf256::instance();
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf.mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  const auto& gf = Gf256::instance();
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.next_byte();
    const auto b = rng.next_byte();
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  const auto& gf = Gf256::instance();
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.next_byte();
    const auto b = rng.next_byte();
    const auto c = rng.next_byte();
    EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  const auto& gf = Gf256::instance();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.next_byte();
    const auto b = rng.next_byte();
    const auto c = rng.next_byte();
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST(Gf256, InverseIsInverse) {
  const auto& gf = Gf256::instance();
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), gf.inv(static_cast<std::uint8_t>(a))), 1)
        << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  const auto& gf = Gf256::instance();
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.next_byte();
    const auto b = static_cast<std::uint8_t>(rng.next_range(1, 255));
    EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
  }
}

TEST(Gf256, KnownProduct) {
  // 0x53 * 0xCA = 0x01 under polynomial 0x11B is the AES classic; under
  // 0x11D the product differs — cross-check against a slow bitwise model.
  const auto& gf = Gf256::instance();
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    unsigned r = 0;
    unsigned aa = a;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) r ^= aa << i;
    }
    // reduce modulo 0x11D
    for (int i = 15; i >= 8; --i) {
      if (r & (1u << i)) r ^= 0x11Du << (i - 8);
    }
    return static_cast<std::uint8_t>(r);
  };
  Rng rng(8);
  for (int i = 0; i < 4000; ++i) {
    const auto a = rng.next_byte();
    const auto b = rng.next_byte();
    EXPECT_EQ(gf.mul(a, b), slow_mul(a, b));
  }
}

TEST(Gf256, ExpLogConsistency) {
  const auto& gf = Gf256::instance();
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(gf.exp(gf.log(static_cast<std::uint8_t>(a))), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  const auto& gf = Gf256::instance();
  std::uint8_t acc = 1;
  for (unsigned e = 0; e < 300; ++e) {
    EXPECT_EQ(gf.pow(3, e), acc) << "e=" << e;
    acc = gf.mul(acc, 3);
  }
}

TEST(Gf256, MulAddVector) {
  const auto& gf = Gf256::instance();
  Bytes dst{1, 2, 3, 4};
  const Bytes src{5, 6, 7, 8};
  Bytes expect = dst;
  for (std::size_t i = 0; i < 4; ++i) {
    expect[i] = static_cast<std::uint8_t>(expect[i] ^ gf.mul(0x1D, src[i]));
  }
  gf.mul_add(dst, src, 0x1D);
  EXPECT_EQ(dst, expect);
}

TEST(Gf256, WordKernelMatchesScalarOnRandomLengths) {
  // The region kernels (mul_add/mul_into) may run word-wide (ssse3/word64)
  // while the cost model charges the scalar table loop; they must be
  // bit-exact. Sweep lengths across the 8-byte-word and 16-byte-vector
  // boundaries, including ragged non-multiple-of-8 tails.
  const auto& gf = Gf256::instance();
  Rng rng(42);
  std::vector<std::size_t> lengths = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                                      100, 1000, 2048, 2048 + 5};
  for (int i = 0; i < 30; ++i) lengths.push_back(rng.next_range(1, 5000));

  for (const std::size_t len : lengths) {
    const auto coeff = rng.next_byte();
    Bytes src(len), word_dst(len), scalar_dst(len);
    for (std::size_t j = 0; j < len; ++j) {
      src[j] = rng.next_byte();
      word_dst[j] = scalar_dst[j] = rng.next_byte();
    }
    gf.mul_add(word_dst, src, coeff);
    gf.mul_add_scalar(scalar_dst, src, coeff);
    ASSERT_EQ(word_dst, scalar_dst) << "mul_add len=" << len << " coeff=" << unsigned(coeff)
                                    << " kernel=" << gf.kernel_name();
    gf.mul_into(word_dst, src, coeff);
    gf.mul_into_scalar(scalar_dst, src, coeff);
    ASSERT_EQ(word_dst, scalar_dst) << "mul_into len=" << len << " coeff=" << unsigned(coeff)
                                    << " kernel=" << gf.kernel_name();
  }
}

TEST(Gf256, WordKernelAllCoefficients) {
  // Every coefficient (split-table row) against the scalar path on a span
  // that exercises both the vector body and a ragged tail.
  const auto& gf = Gf256::instance();
  Rng rng(43);
  Bytes src(67);
  for (auto& b : src) b = rng.next_byte();
  for (unsigned c = 0; c < 256; ++c) {
    Bytes word_dst(src.size()), scalar_dst(src.size());
    for (std::size_t j = 0; j < src.size(); ++j) {
      word_dst[j] = scalar_dst[j] = rng.next_byte();
    }
    const auto coeff = static_cast<std::uint8_t>(c);
    gf.mul_add(word_dst, src, coeff);
    gf.mul_add_scalar(scalar_dst, src, coeff);
    ASSERT_EQ(word_dst, scalar_dst) << "coeff=" << c;
  }
}

TEST(Gf256, MulAddHonorsShorterSpan) {
  // Region ops clamp to min(dst, src) regardless of kernel.
  const auto& gf = Gf256::instance();
  Bytes src(32, 0xAB);
  Bytes dst(20, 0x01);
  Bytes expect = dst;
  gf.mul_add_scalar(expect, ByteSpan(src).first(20), 0x37);
  gf.mul_add(dst, src, 0x37);
  EXPECT_EQ(dst, expect);
}

// ----------------------------------------------------------- ReedSolomon

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(200, 56));
}

TEST(ReedSolomon, SystematicIdentity) {
  // Data chunks pass through unchanged: decode with only the data chunks
  // present returns them verbatim.
  ReedSolomon rs(3, 2);
  Rng rng(10);
  std::vector<Bytes> data(3, Bytes(64));
  for (auto& d : data) {
    for (auto& b : d) b = rng.next_byte();
  }
  std::vector<std::pair<unsigned, Bytes>> present;
  for (unsigned i = 0; i < 3; ++i) present.emplace_back(i, data[i]);
  auto out = rs.decode(present);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, ParityIsDeterministic) {
  ReedSolomon rs(4, 2);
  std::vector<Bytes> data(4, Bytes(128, 0x77));
  const auto p1 = rs.encode(data);
  const auto p2 = rs.encode(data);
  EXPECT_EQ(p1, p2);
}

TEST(ReedSolomon, EncodeRequiresEqualChunks) {
  ReedSolomon rs(2, 1);
  std::vector<Bytes> data{Bytes(10), Bytes(11)};
  EXPECT_THROW(rs.encode(data), std::invalid_argument);
  std::vector<Bytes> one{Bytes(10)};
  EXPECT_THROW(rs.encode(one), std::invalid_argument);
}

TEST(ReedSolomon, IntermediatePlusAggregationMatchesFullEncode) {
  // The TriEC tripartite decomposition (paper §VI-B): per-data-node
  // intermediate parities XOR-aggregated at parity nodes must equal the
  // monolithic encode.
  ReedSolomon rs(3, 2);
  Rng rng(11);
  std::vector<Bytes> data(3, Bytes(256));
  for (auto& d : data) {
    for (auto& b : d) b = rng.next_byte();
  }
  const auto full = rs.encode(data);

  std::vector<Bytes> agg(2, Bytes(256, 0));
  for (unsigned j = 0; j < 3; ++j) {
    const auto inter = rs.encode_intermediate(j, data[j]);
    for (unsigned i = 0; i < 2; ++i) {
      ReedSolomon::aggregate(agg[i], inter[i]);
    }
  }
  EXPECT_EQ(agg, full);
}

struct RsParam {
  unsigned k, m;
};

class ReedSolomonRecovery : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonRecovery, SurvivesEveryErasurePattern) {
  // MDS property: ANY m erasures are recoverable. Sweep all (k+m choose m)
  // erasure patterns for the parameterized code.
  const auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  Rng rng(1234 + k * 16 + m);
  std::vector<Bytes> data(k, Bytes(96));
  for (auto& d : data) {
    for (auto& b : d) b = rng.next_byte();
  }
  const auto parity = rs.encode(data);

  std::vector<Bytes> all = data;
  all.insert(all.end(), parity.begin(), parity.end());

  // Enumerate subsets of exactly k surviving chunks via bitmask.
  const unsigned n = k + m;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<unsigned>(__builtin_popcount(mask)) != k) continue;
    std::vector<std::pair<unsigned, Bytes>> present;
    for (unsigned i = 0; i < n; ++i) {
      if (mask & (1u << i)) present.emplace_back(i, all[i]);
    }
    auto out = rs.decode(present);
    ASSERT_TRUE(out.has_value()) << "mask=" << mask;
    EXPECT_EQ(*out, data) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, ReedSolomonRecovery,
                         ::testing::Values(RsParam{2, 1}, RsParam{3, 2}, RsParam{4, 2},
                                           RsParam{6, 3}, RsParam{5, 4}, RsParam{8, 3}),
                         [](const ::testing::TestParamInfo<RsParam>& pinfo) {
                           return "RS" + std::to_string(pinfo.param.k) + "_" +
                                  std::to_string(pinfo.param.m);
                         });

TEST(ReedSolomon, DecodeRejectsTooFewChunks) {
  ReedSolomon rs(3, 2);
  std::vector<std::pair<unsigned, Bytes>> present{{0, Bytes(8)}, {1, Bytes(8)}};
  EXPECT_FALSE(rs.decode(present).has_value());
}

TEST(ReedSolomon, DecodeRejectsDuplicateIndices) {
  ReedSolomon rs(2, 1);
  std::vector<std::pair<unsigned, Bytes>> present{{0, Bytes(8)}, {0, Bytes(8)}};
  EXPECT_FALSE(rs.decode(present).has_value());
}

TEST(ReedSolomon, DecodeRejectsOutOfRangeIndex) {
  ReedSolomon rs(2, 1);
  std::vector<std::pair<unsigned, Bytes>> present{{0, Bytes(8)}, {7, Bytes(8)}};
  EXPECT_FALSE(rs.decode(present).has_value());
}

TEST(ReedSolomon, LargeChunks) {
  ReedSolomon rs(6, 3);
  Rng rng(77);
  std::vector<Bytes> data(6, Bytes(64 * 1024));
  for (auto& d : data) {
    for (auto& b : d) b = rng.next_byte();
  }
  const auto parity = rs.encode(data);
  // Drop three data chunks, recover from the rest.
  std::vector<std::pair<unsigned, Bytes>> present;
  for (unsigned i = 3; i < 6; ++i) present.emplace_back(i, data[i]);
  for (unsigned i = 0; i < 3; ++i) present.emplace_back(6 + i, parity[i]);
  auto out = rs.decode(present);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, CoefficientAccessors) {
  ReedSolomon rs(3, 2);
  EXPECT_THROW(rs.parity_coefficient(2, 0), std::out_of_range);
  EXPECT_THROW(rs.parity_coefficient(0, 3), std::out_of_range);
  // Cauchy coefficients are never zero.
  for (unsigned i = 0; i < 2; ++i) {
    for (unsigned j = 0; j < 3; ++j) {
      EXPECT_NE(rs.parity_coefficient(i, j), 0);
    }
  }
}

TEST(ReedSolomon, CorruptChunkYieldsWrongDataNotCrash) {
  // Decoding with a silently corrupted chunk returns wrong data (RS erasure
  // codes detect nothing by themselves) but must not crash or hang.
  ReedSolomon rs(2, 1);
  std::vector<Bytes> data{Bytes(16, 0x11), Bytes(16, 0x22)};
  auto parity = rs.encode(data);
  parity[0][3] ^= 0xFF;
  std::vector<std::pair<unsigned, Bytes>> present{{0, data[0]}, {2, parity[0]}};
  auto out = rs.decode(present);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE((*out)[1], data[1]);
}

}  // namespace
}  // namespace nadfs::ec
