// Cluster elasticity suite: node restart/rejoin, planned drain, and the
// background rebalancer — the lifecycle beyond "nodes only ever die".
//
// Covers the full alive -> suspected -> failed -> (restart) -> alive loop
// driven by the failure detector's rejoin confirmation probes, planned
// decommission through Rebalancer::drain_node, skew-driven background
// migration under a bandwidth budget, and the placement-path bugfixes that
// ride along (typed kNoQuorum creates, partition-held spare allocation,
// serialized rebuilds).
//
// Chaos methodology (PR 4): seeded scenarios run twice and must produce
// bit-identical FNV digests; NADFS_CHAOS_SEED varies the seed and
// scripts/check.sh re-runs these suites under a second seed and under
// NADFS_SIM_PARALLEL=1, so assertions hold for any seed and anything
// seed-dependent is digest-folded, not pinned.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/rng.hpp"
#include "services/failure_detector.hpp"
#include "services/rebalancer.hpp"
#include "workload/workload.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FailureDetector;
using services::FilePolicy;
using services::Rebalancer;
using services::RebalancerConfig;
using services::RecoveryManager;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("NADFS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void u8(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const Bytes& b) {
    u64(b.size());
    for (auto x : b) u8(x);
  }
  void counters(const net::FaultCounters& fc) {
    u64(fc.tx_drops);
    u64(fc.rx_drops);
    u64(fc.random_drops);
    u64(fc.duplicates);
    u64(fc.corruptions);
  }
  void detector(const FailureDetector& det) {
    u64(det.probes_sent());
    u64(det.probes_missed());
    u64(det.indirect_probes());
    u64(det.escalations_held());
    u64(det.rejoins());
  }
};

/// Systematic plain read of an EC layout: fetch the k data chunks directly
/// and concatenate.
Bytes ec_plain_read(Cluster& cluster, Client& client, const services::FileLayout& layout) {
  const auto k = layout.targets.size();
  std::vector<Bytes> parts(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& coord = layout.targets[i];
    const auto cap =
        cluster.management().grant(client.client_id(), layout.object_id, auth::Right::kRead, 0,
                                   coord.addr, layout.chunk_len);
    client.read_extent(coord, cap, static_cast<std::uint32_t>(layout.chunk_len),
                       [&parts, i](Bytes d, TimePs) { parts[i] = std::move(d); });
  }
  cluster.sim().run();
  Bytes out;
  out.reserve(k * layout.chunk_len);
  for (auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  out.resize(layout.size);
  return out;
}

/// Read an object through its *current* layout with a freshly minted
/// capability (migrations re-home extents, so stale caps don't cover them).
Bytes read_current(Cluster& cluster, Client& client, const std::string& name,
                   std::uint32_t len) {
  const services::FileLayout* layout = cluster.metadata().lookup(name);
  if (layout == nullptr) return {};
  const auto cap = cluster.metadata().grant(client.client_id(), *layout, auth::Right::kRead);
  Bytes got;
  client.read(*layout, cap, len, [&got](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  return got;
}

/// True when any coordinate of any layout still lives on `node`.
bool hosts_anything(Cluster& cluster, net::NodeId node) {
  for (const auto& name : cluster.metadata().list("")) {
    const auto* l = cluster.metadata().lookup(name);
    if (l == nullptr) continue;
    for (const auto& c : l->targets) {
      if (c.node == node) return true;
    }
    for (const auto& c : l->parity) {
      if (c.node == node) return true;
    }
  }
  return false;
}

// =============================================================== Rejoin

// Tentpole loop under load: a storage node is killed mid-run, the detector
// declares it failed and recovery re-homes its chunk; the node then
// restarts (FaultPlan::restart_at + StorageNode::restart_dfs) and the
// detector walks it failed -> alive after rejoin_probes consecutive
// answered heartbeats, re-admitting it to placement. A plain-write load
// runs throughout, and same-bytes rewrites of the EC object land in
// whatever failure state the seed produces. Digest of everything.
std::uint64_t run_kill_restart_rejoin(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 7;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client writer(cluster, 0);
  Client prober(cluster, 1);
  RecoveryManager recovery(cluster, writer);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const std::size_t size = 48000;
  const auto& layout = cluster.metadata().create("obj", size, policy);
  const auto cap = cluster.metadata().grant(writer.client_id(), layout, auth::Right::kReadWrite);
  const Bytes data = random_bytes(size, 42);

  bool v1_ok = false;
  writer.write(layout, cap, data, [&](bool ok, TimePs) { v1_ok = ok; });
  cluster.sim().run();
  EXPECT_TRUE(v1_ok) << "seed " << seed;
  const TimePs t0 = cluster.sim().now();

  // A small plain object carries the background load through the episode.
  const auto& hot = cluster.metadata().create("hot", 4 * KiB, FilePolicy{});
  const auto hot_cap = cluster.metadata().grant(writer.client_id(), hot, auth::Right::kReadWrite);

  Rng jitter(seed);
  net::FaultPlan plan;
  plan.set_seed(seed);
  const net::NodeId victim = layout.parity[0].node;
  const TimePs kill_at = t0 + ns(200) + jitter.next_below(us(1));
  const TimePs restart_time = kill_at + us(150);  // well past detection (~80 us)
  plan.kill_node(victim, kill_at);
  plan.restart_at(victim, restart_time);
  cluster.network().install_faults(plan);
  // The revived machine comes back with cold NIC state; NVMM survives.
  cluster.sim().schedule_fence_at(restart_time, [&cluster, victim] {
    cluster.storage_by_node(victim).restart_dfs();
  });

  writer.set_timeout(us(30));
  writer.set_retry_policy(2, us(10));

  // Load: 40 plain writes at a steady cadence, plus 3 same-bytes EC
  // rewrites that land in whatever failure state the seed puts the cluster
  // in (same bytes keep every surviving chunk consistent either way).
  std::uint64_t hot_ok = 0, hot_failed = 0;
  Bytes hot_last;
  for (int i = 0; i < 40; ++i) {
    const TimePs at = t0 + us(5) + static_cast<TimePs>(i) * us(10);
    cluster.sim().schedule_at(at, [&, i] {
      Bytes content = random_bytes(4 * KiB, 500 + static_cast<std::uint64_t>(i));
      writer.write(hot, hot_cap, std::move(content), [&, i](bool ok, TimePs) {
        if (ok) {
          ++hot_ok;
          hot_last = random_bytes(4 * KiB, 500 + static_cast<std::uint64_t>(i));
        } else {
          ++hot_failed;
        }
      });
    });
  }
  std::uint64_t obj_rewrite_outcomes = 0;
  for (int i = 0; i < 3; ++i) {
    const TimePs at = t0 + us(60) + static_cast<TimePs>(i) * us(120) + jitter.next_below(us(5));
    cluster.sim().schedule_at(at, [&, i] {
      writer.write(layout, cap, data, [&, i](bool ok, TimePs) {
        obj_rewrite_outcomes |= (ok ? 1ull : 2ull) << (2 * i);
      });
    });
  }

  FailureDetector detector(cluster, prober);
  TimePs detected_at = 0, rejoined_at = 0, rebuilt_at = 0;
  std::optional<services::FileLayout> repaired;
  detector.set_on_failure([&](net::NodeId node, TimePs at) {
    EXPECT_EQ(node, victim) << "seed " << seed;
    if (detected_at != 0) return;
    detected_at = at;
    recovery.rebuild("obj", detector.failed(),
                     [&](std::optional<services::FileLayout> l, TimePs t) {
                       repaired = std::move(l);
                       rebuilt_at = t;
                     });
  });
  detector.set_on_rejoin([&](net::NodeId node, TimePs at) {
    EXPECT_EQ(node, victim) << "seed " << seed;
    rejoined_at = at;
  });
  detector.start();
  cluster.sim().run_until(t0 + us(700));
  detector.stop();
  cluster.sim().run();

  // Failure was detected, the chunk re-homed, and the node rejoined.
  EXPECT_GT(detected_at, kill_at) << "seed " << seed;
  EXPECT_TRUE(repaired.has_value()) << "seed " << seed;
  if (repaired.has_value()) {
    for (const auto& c : repaired->targets) EXPECT_NE(c.node, victim);
    for (const auto& c : repaired->parity) EXPECT_NE(c.node, victim);
  }
  EXPECT_GE(rejoined_at, restart_time) << "seed " << seed;
  EXPECT_EQ(detector.rejoins(), 1u) << "seed " << seed;
  EXPECT_EQ(detector.health(victim), FailureDetector::Health::kAlive) << "seed " << seed;
  EXPECT_TRUE(detector.failed().empty()) << "seed " << seed;
  // Placement re-inclusion: the rejoined node takes spares again.
  EXPECT_FALSE(cluster.metadata().excluded(victim)) << "seed " << seed;
  std::vector<net::NodeId> avoid;
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    const net::NodeId id = cluster.storage_node(i).id();
    if (id != victim) avoid.push_back(id);
  }
  const auto spare = cluster.metadata().try_allocate_spare(4 * KiB, avoid);
  EXPECT_TRUE(spare.has_value()) << "seed " << seed;
  if (spare.has_value()) EXPECT_EQ(spare->node, victim) << "seed " << seed;

  // Zero data loss: the repaired object reads byte-equal, and the load
  // object holds the last successful write.
  const auto* current = cluster.metadata().lookup("obj");
  EXPECT_NE(current, nullptr);
  if (current == nullptr) return 0;
  const Bytes plain = ec_plain_read(cluster, writer, *current);
  EXPECT_EQ(plain, data) << "seed " << seed;
  EXPECT_GT(hot_ok, 0u) << "seed " << seed;
  if (!hot_last.empty()) {
    EXPECT_EQ(read_current(cluster, writer, "hot", 4 * KiB), hot_last) << "seed " << seed;
  }
  EXPECT_EQ(writer.tracker().pending_count(), 0u);
  EXPECT_EQ(prober.tracker().pending_count(), 0u);

  Digest d;
  d.bytes(plain);
  d.u64(detected_at);
  d.u64(rebuilt_at);
  d.u64(rejoined_at);
  d.u64(kill_at);
  d.u64(hot_ok);
  d.u64(hot_failed);
  d.u64(obj_rewrite_outcomes);
  d.detector(detector);
  d.counters(cluster.network().fault_counters());
  d.u64(writer.tracker().late_acks());
  d.u64(cluster.sim().executed_events());
  return d.h;
}

TEST(Rejoin, KillRestartRejoinUnderLoadIsDeterministic) {
  const std::uint64_t seed = chaos_seed();
  const auto first = run_kill_restart_rejoin(seed);
  if (::testing::Test::HasFatalFailure()) return;
  const auto second = run_kill_restart_rejoin(seed);
  EXPECT_EQ(first, second) << "same seed must replay identically (seed " << seed << ")";
}

// A node that restarts *behind a partition* must not rejoin until its
// confirmation probes actually get through: rejoin_probes consecutive
// answered heartbeats, and a trunk cut answers none of them.
std::uint64_t run_restart_during_partition(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 6;
  cfg.clients = 1;  // prober on node 6, leaf 0
  cfg.network.topology = net::Topology::leaf_spine(2, 1);
  Cluster cluster(cfg);
  const net::SwitchId spine = cluster.network().topology().spine_id(0);
  Client prober(cluster, 0);
  FailureDetector detector(cluster, prober);

  const net::NodeId victim = 1;  // leaf 1: opposite side from the prober
  EXPECT_EQ(cluster.network().topology().leaf_of(victim), 1u);

  Rng jitter(seed);
  net::FaultPlan plan;
  plan.set_seed(seed);
  const TimePs kill_at = us(20) + jitter.next_below(us(5));
  const TimePs cut_at = us(200);
  const TimePs heal_at = us(500);
  const TimePs restart_time = us(250) + jitter.next_below(us(10));  // mid-cut
  plan.kill_node(victim, kill_at);
  plan.restart_at(victim, restart_time);
  plan.trunk_down(0, spine, cut_at, heal_at);
  cluster.network().install_faults(plan);
  cluster.sim().schedule_fence_at(restart_time, [&cluster, victim] {
    cluster.storage_by_node(victim).restart_dfs();
  });

  TimePs rejoined_at = 0;
  detector.set_on_rejoin([&](net::NodeId node, TimePs at) {
    EXPECT_EQ(node, victim) << "seed " << seed;
    rejoined_at = at;
  });

  // Deep inside the cut, well after the restart: the node is back up at
  // the network level but its heartbeats die on the trunk — it must still
  // be failed, with zero rejoins booked.
  bool mid_cut_failed = false;
  bool mid_cut_excluded = false;
  std::uint64_t mid_cut_rejoins = 0;
  cluster.sim().schedule_at(us(450), [&] {
    mid_cut_failed = detector.health(victim) == FailureDetector::Health::kFailed;
    mid_cut_excluded = cluster.metadata().excluded(victim);
    mid_cut_rejoins = detector.rejoins();
  });

  detector.start();
  cluster.sim().run_until(us(800));
  detector.stop();
  cluster.sim().run();

  EXPECT_TRUE(mid_cut_failed) << "seed " << seed;
  EXPECT_TRUE(mid_cut_excluded) << "seed " << seed;
  EXPECT_EQ(mid_cut_rejoins, 0u) << "seed " << seed;

  // After the heal the probes land and the node rejoins.
  EXPECT_GT(rejoined_at, heal_at) << "seed " << seed;
  EXPECT_EQ(detector.rejoins(), 1u) << "seed " << seed;
  EXPECT_EQ(detector.health(victim), FailureDetector::Health::kAlive) << "seed " << seed;
  EXPECT_FALSE(cluster.metadata().excluded(victim)) << "seed " << seed;
  // The cut parked the other far-side peers (quorum hold) without failing
  // them, and every hold was released on rehabilitation.
  EXPECT_TRUE(detector.failed().empty()) << "seed " << seed;
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    const net::NodeId id = cluster.storage_node(i).id();
    EXPECT_EQ(detector.health(id), FailureDetector::Health::kAlive) << "seed " << seed;
    EXPECT_FALSE(cluster.metadata().held(id)) << "seed " << seed;
  }

  Digest d;
  d.u64(kill_at);
  d.u64(restart_time);
  d.u64(rejoined_at);
  d.detector(detector);
  d.counters(cluster.network().fault_counters());
  d.u64(cluster.network().fault_counters().trunk_drops);
  d.u64(cluster.sim().executed_events());
  return d.h;
}

TEST(Rejoin, RestartDuringPartitionWaitsForConfirmationProbes) {
  const std::uint64_t seed = chaos_seed();
  const auto first = run_restart_during_partition(seed);
  if (::testing::Test::HasFatalFailure()) return;
  const auto second = run_restart_during_partition(seed);
  EXPECT_EQ(first, second) << "same seed must replay identically (seed " << seed << ")";
}

// Satellite: overlapping rebuilds of the same object are serialized.
// Without per-name serialization, the second rebuild snapshots the
// pre-repair layout and its update_layout resurrects the first victim's
// re-homed coordinate — the double-adoption race a rejoin-mid-rebuild (or
// second failure) triggers. The deferred rebuild must run against the
// *published* layout of the first.
TEST(Rejoin, OverlappingRebuildsAreSerializedNotDoubleAdopted) {
  ClusterConfig cfg;
  cfg.storage_nodes = 8;
  Cluster cluster(cfg);
  Client writer(cluster, 0);
  RecoveryManager recovery(cluster, writer);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const std::size_t size = 48000;
  const auto& layout = cluster.metadata().create("obj", size, policy);
  const auto cap = cluster.metadata().grant(writer.client_id(), layout, auth::Right::kWrite);
  const Bytes data = random_bytes(size, 42);
  bool wrote = false;
  writer.write(layout, cap, data, [&](bool ok, TimePs) { wrote = ok; });
  cluster.sim().run();
  ASSERT_TRUE(wrote);

  const net::NodeId v1 = layout.targets[0].node;
  const net::NodeId v2 = layout.parity[0].node;

  // Two rebuilds for the same name, back to back: the second must defer
  // until the first publishes, then run against the updated layout.
  std::optional<services::FileLayout> first, second;
  TimePs first_at = 0, second_at = 0;
  recovery.rebuild("obj", {v1}, [&](std::optional<services::FileLayout> l, TimePs at) {
    first = std::move(l);
    first_at = at;
  });
  recovery.rebuild("obj", {v2}, [&](std::optional<services::FileLayout> l, TimePs at) {
    second = std::move(l);
    second_at = at;
  });
  EXPECT_EQ(recovery.rebuilds_deferred(), 1u);
  cluster.sim().run();

  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second_at, first_at);  // strictly serialized, not interleaved
  // The final layout re-homes BOTH victims: the second rebuild saw the
  // first's published layout, so v1's old coordinate was not resurrected.
  std::set<net::NodeId> nodes;
  for (const auto& c : second->targets) nodes.insert(c.node);
  for (const auto& c : second->parity) nodes.insert(c.node);
  EXPECT_EQ(nodes.size(), 5u);  // k+m distinct nodes, no double adoption
  EXPECT_EQ(nodes.count(v1), 0u);
  EXPECT_EQ(nodes.count(v2), 0u);
  // And the metadata service agrees with the callback's copy.
  const auto* current = cluster.metadata().lookup("obj");
  ASSERT_NE(current, nullptr);
  for (const auto& c : current->targets) EXPECT_NE(c.node, v1);
  for (const auto& c : current->targets) EXPECT_NE(c.node, v2);

  // Byte-equal through the twice-repaired layout.
  EXPECT_EQ(ec_plain_read(cluster, writer, *current), data);
  EXPECT_EQ(writer.tracker().pending_count(), 0u);
}

// ================================================================ Drain

// Planned decommission under a write load: every extent on the draining
// node migrates off under the bandwidth budget, the node is removed from
// the placement view and retired from the probe loop, and no byte is lost
// — neither on the drained objects nor under the concurrent writes.
std::uint64_t run_drain_during_writes(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  cfg.clients = 3;
  Cluster cluster(cfg);
  Client writer(cluster, 0);
  Client mover(cluster, 1);
  Client prober(cluster, 2);
  mover.set_timeout(us(50));

  // Ten plain objects round-robin over five nodes: two land on the victim.
  const std::size_t size = 64 * KiB;
  std::vector<Bytes> expected(10);
  std::vector<auth::Capability> caps;
  for (int i = 0; i < 10; ++i) {
    const std::string name = "d" + std::to_string(i);
    const auto& l = cluster.metadata().create(name, size, FilePolicy{});
    caps.push_back(cluster.metadata().grant(writer.client_id(), l, auth::Right::kReadWrite));
    expected[i] = random_bytes(size, 1000 + static_cast<std::uint64_t>(i));
    bool ok = false;
    writer.write(l, caps.back(), expected[i], [&ok](bool o, TimePs) { ok = o; });
    cluster.sim().run();
    EXPECT_TRUE(ok) << "seed " << seed;
  }
  const TimePs t0 = cluster.sim().now();
  const net::NodeId victim = cluster.storage_node(0).id();
  std::uint64_t victim_extents = 0;
  for (int i = 0; i < 10; ++i) {
    const auto* l = cluster.metadata().lookup("d" + std::to_string(i));
    if (l != nullptr && l->targets[0].node == victim) ++victim_extents;
  }
  EXPECT_GT(victim_extents, 0u) << "seed " << seed;

  FailureDetector detector(cluster, prober);
  RebalancerConfig rcfg;
  rcfg.interval = us(20);
  rcfg.skew_threshold = 64 * MiB;  // drain work only — no skew moves racing the writes
  rcfg.bytes_per_tick = 128 * KiB;
  Rebalancer rebalancer(cluster, mover, rcfg);
  rebalancer.set_detector(&detector);
  detector.start();
  rebalancer.start();

  bool drain_ok = false;
  TimePs drained_at = 0;
  rebalancer.drain_node(victim, [&](bool ok, TimePs at) {
    drain_ok = ok;
    drained_at = at;
  });

  // Concurrent writes to the objects NOT hosted on the draining node (the
  // drained ones stay read-only: migration copies them byte-for-byte).
  Rng jitter(seed);
  writer.set_timeout(us(40));
  writer.set_retry_policy(1, us(10));
  std::uint64_t writes_ok = 0, writes_failed = 0;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 10; ++i) {
      const auto* l = cluster.metadata().lookup("d" + std::to_string(i));
      EXPECT_NE(l, nullptr);
      if (l == nullptr || l->targets[0].node == victim) continue;
      const TimePs at = t0 + us(10) + static_cast<TimePs>(round) * us(80) +
                        static_cast<TimePs>(i) * us(7) + jitter.next_below(us(3));
      cluster.sim().schedule_at(at, [&, i, round] {
        Bytes content =
            random_bytes(size, 2000 + static_cast<std::uint64_t>(i) * 10 +
                                   static_cast<std::uint64_t>(round));
        writer.write(*cluster.metadata().lookup("d" + std::to_string(i)), caps[i],
                     std::move(content), [&, i, round](bool ok, TimePs) {
                       if (ok) {
                         ++writes_ok;
                         expected[i] = random_bytes(
                             size, 2000 + static_cast<std::uint64_t>(i) * 10 +
                                       static_cast<std::uint64_t>(round));
                       } else {
                         ++writes_failed;
                       }
                     });
      });
    }
  }

  cluster.sim().run_until(t0 + ms(1));
  rebalancer.stop();
  detector.stop();
  cluster.sim().run();

  // The decommission completed cleanly.
  EXPECT_TRUE(drain_ok) << "seed " << seed;
  EXPECT_GT(drained_at, t0) << "seed " << seed;
  EXPECT_EQ(rebalancer.drains_completed(), 1u) << "seed " << seed;
  EXPECT_EQ(rebalancer.moves(), victim_extents) << "seed " << seed;
  EXPECT_EQ(rebalancer.moved_bytes(), victim_extents * size) << "seed " << seed;
  EXPECT_EQ(rebalancer.moves_aborted(), 0u) << "seed " << seed;
  EXPECT_TRUE(cluster.metadata().removed(victim)) << "seed " << seed;
  EXPECT_FALSE(hosts_anything(cluster, victim)) << "seed " << seed;
  // Retired from the probe loop, never declared failed.
  EXPECT_TRUE(detector.failed().empty()) << "seed " << seed;
  EXPECT_EQ(detector.health(victim), FailureDetector::Health::kDraining) << "seed " << seed;

  // Zero data loss: every object reads byte-equal through its current
  // layout — migrated copies and rewritten ones alike.
  Digest d;
  for (int i = 0; i < 10; ++i) {
    const Bytes got = read_current(cluster, writer, "d" + std::to_string(i),
                                   static_cast<std::uint32_t>(size));
    EXPECT_EQ(got, expected[i]) << "object d" << i << " seed " << seed;
    d.bytes(got);
  }
  EXPECT_GT(writes_ok, 0u) << "seed " << seed;
  EXPECT_EQ(writer.tracker().pending_count(), 0u);
  EXPECT_EQ(mover.tracker().pending_count(), 0u);

  d.u64(drained_at);
  d.u64(rebalancer.moves());
  d.u64(rebalancer.moved_bytes());
  d.u64(writes_ok);
  d.u64(writes_failed);
  d.detector(detector);
  d.counters(cluster.network().fault_counters());
  d.u64(cluster.sim().executed_events());
  return d.h;
}

TEST(Drain, DrainDuringWritesMigratesEverythingAndRetiresNode) {
  const std::uint64_t seed = chaos_seed();
  const auto first = run_drain_during_writes(seed);
  if (::testing::Test::HasFatalFailure()) return;
  const auto second = run_drain_during_writes(seed);
  EXPECT_EQ(first, second) << "same seed must replay identically (seed " << seed << ")";
}

TEST(Drain, DrainedNodeReceivesNoNewPlacementsAndRemovalShrinksTheView) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  auto& meta = cluster.metadata();
  const net::NodeId victim = cluster.storage_node(2).id();

  meta.drain(victim);
  EXPECT_TRUE(meta.draining(victim));
  EXPECT_EQ(meta.eligible_node_count(), 3u);
  EXPECT_EQ(meta.placeable_node_count(), 4u);  // draining still counts as placeable

  for (int i = 0; i < 8; ++i) {
    const auto [err, layout] = meta.try_create("obj" + std::to_string(i), 4 * KiB, FilePolicy{});
    ASSERT_EQ(err, dfs::DfsError::kOk);
    for (const auto& c : layout->targets) EXPECT_NE(c.node, victim);
  }
  // Spares skip it too.
  for (int i = 0; i < 4; ++i) {
    const auto spare = meta.try_allocate_spare(4 * KiB, {});
    ASSERT_TRUE(spare.has_value());
    EXPECT_NE(spare->node, victim);
  }

  // Removal takes it out of the placement view for good: a policy needing
  // every original node is now structurally unsatisfiable (kBadArg), not
  // transiently short (kNoQuorum).
  meta.remove_node(victim);
  EXPECT_TRUE(meta.removed(victim));
  EXPECT_FALSE(meta.draining(victim));
  EXPECT_EQ(meta.placeable_node_count(), 3u);
  FilePolicy repl4;
  repl4.resiliency = dfs::Resiliency::kReplication;
  repl4.repl_k = 4;
  EXPECT_EQ(meta.try_create("wide", 4 * KiB, repl4).first, dfs::DfsError::kBadArg);
  FilePolicy repl3 = repl4;
  repl3.repl_k = 3;
  const auto [err3, l3] = meta.try_create("fits", 4 * KiB, repl3);
  ASSERT_EQ(err3, dfs::DfsError::kOk);
  for (const auto& c : l3->targets) EXPECT_NE(c.node, victim);
}

// =========================================================== Elasticity

// Satellite: capacity exhaustion is a typed, *retryable* verdict. A policy
// the cluster could normally satisfy NACKs kNoQuorum (not a throw, not
// kBadArg) while failures shrink the eligible set, and the same create
// succeeds once nodes are readmitted; kBadArg stays reserved for policies
// no amount of healing can place.
TEST(Elasticity, CreateNoQuorumIsTypedAndRetryable) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  auto& meta = cluster.metadata();

  FilePolicy repl3;
  repl3.resiliency = dfs::Resiliency::kReplication;
  repl3.repl_k = 3;

  meta.exclude_from_placement(cluster.storage_node(0).id());
  meta.exclude_from_placement(cluster.storage_node(1).id());
  EXPECT_EQ(meta.eligible_node_count(), 2u);

  // Transient shortage: eligible (2) < want (3) <= placeable (4).
  std::pair<dfs::DfsError, const services::FileLayout*> r;
  EXPECT_NO_THROW(r = meta.try_create("obj", 16 * KiB, repl3));
  EXPECT_EQ(r.first, dfs::DfsError::kNoQuorum);
  EXPECT_EQ(r.second, nullptr);
  EXPECT_EQ(client.create("obj", 16 * KiB, repl3), dfs::DfsError::kNoQuorum);

  // Structural impossibility stays kBadArg even with nodes down.
  FilePolicy repl5 = repl3;
  repl5.repl_k = 5;
  EXPECT_EQ(meta.try_create("wide", 16 * KiB, repl5).first, dfs::DfsError::kBadArg);
  FilePolicy ec32;
  ec32.resiliency = dfs::Resiliency::kErasureCoding;
  ec32.ec_k = 3;
  ec32.ec_m = 2;
  EXPECT_EQ(meta.try_create("ec", 16 * KiB, ec32).first, dfs::DfsError::kBadArg);

  // Spare allocation reports the same way, typed instead of throwing.
  std::vector<net::NodeId> avoid = {cluster.storage_node(2).id(),
                                    cluster.storage_node(3).id()};
  EXPECT_FALSE(meta.try_allocate_spare(4 * KiB, avoid).has_value());
  EXPECT_THROW(meta.allocate_spare(4 * KiB, avoid), std::runtime_error);

  // The retry story: nodes rejoin, the same create now lands.
  meta.readmit_to_placement(cluster.storage_node(0).id());
  meta.readmit_to_placement(cluster.storage_node(1).id());
  EXPECT_EQ(client.create("obj", 16 * KiB, repl3), dfs::DfsError::kOk);
  const auto* layout = meta.lookup("obj");
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->targets.size(), 3u);
}

// Satellite regression: spare allocation must skip partition-held nodes —
// a spare on the far side of a suspected cut would strand the repair.
TEST(Elasticity, SpareAllocationSkipsPartitionHeldNodes) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  auto& meta = cluster.metadata();
  const net::NodeId held = cluster.storage_node(1).id();
  std::vector<net::NodeId> others = {cluster.storage_node(0).id(),
                                     cluster.storage_node(2).id(),
                                     cluster.storage_node(3).id()};

  meta.hold_from_placement(held);
  EXPECT_TRUE(meta.held(held));
  EXPECT_FALSE(meta.excluded(held));  // a hold is not a failure verdict

  // Rotation never lands on the held node...
  for (int i = 0; i < 8; ++i) {
    const auto spare = meta.try_allocate_spare(4 * KiB, {});
    ASSERT_TRUE(spare.has_value());
    EXPECT_NE(spare->node, held);
  }
  // ...even when it is the only node outside the avoid set.
  EXPECT_FALSE(meta.try_allocate_spare(4 * KiB, others).has_value());

  // The hold is reference-counted: two detectors (one per partition side)
  // may hold the same node; one release must not unpark it.
  meta.hold_from_placement(held);
  meta.release_hold(held);
  EXPECT_TRUE(meta.held(held));
  EXPECT_FALSE(meta.try_allocate_spare(4 * KiB, others).has_value());
  meta.release_hold(held);
  EXPECT_FALSE(meta.held(held));
  const auto spare = meta.try_allocate_spare(4 * KiB, others);
  ASSERT_TRUE(spare.has_value());
  EXPECT_EQ(spare->node, held);
}

// Background rebalance: a deliberately skewed placement (every extent on
// one node) converges below the skew threshold under the per-tick byte
// budget, every migration is visible as a span on the rebalance lane and
// as registry counters, and no byte is lost in the moves.
std::uint64_t run_rebalance_convergence(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  Cluster cluster(cfg);
  obs::SpanTracer tracer;
  cluster.set_tracer(&tracer);
  Client writer(cluster, 0);
  Client mover(cluster, 1);
  mover.set_timeout(us(50));
  auto& meta = cluster.metadata();

  // Pile 8 x 64 KiB objects onto node 0 by holding everyone else.
  for (std::size_t i = 1; i < cluster.storage_node_count(); ++i) {
    meta.hold_from_placement(cluster.storage_node(i).id());
  }
  const std::size_t size = 64 * KiB;
  std::vector<Bytes> contents(8);
  for (int i = 0; i < 8; ++i) {
    const auto& l = meta.create("r" + std::to_string(i), size, FilePolicy{});
    EXPECT_EQ(l.targets[0].node, cluster.storage_node(0).id());
    contents[i] = random_bytes(size, seed * 100 + static_cast<std::uint64_t>(i));
    const auto cap = meta.grant(writer.client_id(), l, auth::Right::kWrite);
    bool ok = false;
    writer.write(l, cap, contents[i], [&ok](bool o, TimePs) { ok = o; });
    cluster.sim().run();
    EXPECT_TRUE(ok) << "seed " << seed;
  }
  for (std::size_t i = 1; i < cluster.storage_node_count(); ++i) {
    meta.release_hold(cluster.storage_node(i).id());
  }

  RebalancerConfig rcfg;
  rcfg.interval = us(20);
  rcfg.skew_threshold = 64 * KiB;
  rcfg.bytes_per_tick = 128 * KiB;  // two extents per tick, max
  Rebalancer rebalancer(cluster, mover, rcfg);
  EXPECT_EQ(rebalancer.skew(), 8 * size) << "seed " << seed;

  rebalancer.start();
  cluster.sim().run_until(cluster.sim().now() + ms(1));
  rebalancer.stop();
  cluster.sim().run();

  // Converged below the threshold; 8 extents over 4 nodes needs >= 6 moves.
  EXPECT_LE(rebalancer.skew(), rcfg.skew_threshold) << "seed " << seed;
  EXPECT_GE(rebalancer.moves(), 6u) << "seed " << seed;
  EXPECT_EQ(rebalancer.moved_bytes(), rebalancer.moves() * size) << "seed " << seed;
  EXPECT_EQ(rebalancer.moves_aborted(), 0u) << "seed " << seed;
  // Observable: registry counters and one span per move on the new lane.
  const auto snap = cluster.metrics().snapshot();
  EXPECT_EQ(snap.at("rebalance.moves"),
            static_cast<long long>(rebalancer.moves()));
  EXPECT_EQ(snap.at("rebalance.moved_bytes"),
            static_cast<long long>(rebalancer.moved_bytes()));
  if (obs::kObsEnabled) {
    std::size_t lane_spans = 0;
    for (const auto& s : tracer.spans()) {
      if (s.lane == obs::kLaneRebalance) ++lane_spans;
    }
    EXPECT_EQ(lane_spans, rebalancer.moves()) << "seed " << seed;
  }

  // No byte lost in the shuffle.
  Digest d;
  for (int i = 0; i < 8; ++i) {
    const Bytes got = read_current(cluster, writer, "r" + std::to_string(i),
                                   static_cast<std::uint32_t>(size));
    EXPECT_EQ(got, contents[i]) << "object r" << i << " seed " << seed;
    d.bytes(got);
  }
  d.u64(rebalancer.moves());
  d.u64(rebalancer.moved_bytes());
  d.u64(rebalancer.skew());
  d.u64(cluster.sim().executed_events());
  cluster.set_tracer(nullptr);
  return d.h;
}

TEST(Elasticity, RebalancerConvergesSkewUnderBudget) {
  const std::uint64_t seed = chaos_seed();
  const auto first = run_rebalance_convergence(seed);
  if (::testing::Test::HasFatalFailure()) return;
  const auto second = run_rebalance_convergence(seed);
  EXPECT_EQ(first, second) << "same seed must replay identically (seed " << seed << ")";
}

// Acceptance: rolling restart of EVERY storage node, one at a time, under
// sustained workload-engine load, with the detector, recovery-free rejoin
// (NVMM survives restarts) and the rebalancer all running. Zero data loss
// (byte-equal golden reads), every node alive and re-admitted at the end,
// skew below threshold, and a goodput timeline that records the dip.
std::uint64_t run_rolling_restart(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.clients = 5;  // 0-1 workload slots, 2 prober, 3 mover, 4 golden writer
  Cluster cluster(cfg);
  Client prober(cluster, 2);
  Client mover(cluster, 3);
  Client golden_writer(cluster, 4);
  mover.set_timeout(us(50));

  // Golden objects, written before the storm and untouched during it: the
  // byte-equality oracle for "zero data loss".
  FilePolicy repl2;
  repl2.resiliency = dfs::Resiliency::kReplication;
  repl2.repl_k = 2;
  // The engine draws its arrival schedule on the absolute clock, so the
  // sim must still be at t=0 here: the golden writes are only *enqueued*
  // and complete in the first microseconds of the engine's run — long
  // before the first kill.
  const std::size_t golden_size = 32 * KiB;
  std::vector<Bytes> golden(3);
  int golden_written = 0;
  for (int i = 0; i < 3; ++i) {
    const auto& l = cluster.metadata().create("golden" + std::to_string(i), golden_size, repl2);
    golden[i] = random_bytes(golden_size, 7000 + static_cast<std::uint64_t>(i));
    const auto cap = cluster.metadata().grant(golden_writer.client_id(), l, auth::Right::kWrite);
    golden_writer.write(l, cap, golden[i], [&golden_written](bool o, TimePs) {
      if (o) ++golden_written;
    });
  }
  const TimePs t0 = 0;

  FailureDetector detector(cluster, prober);
  RebalancerConfig rcfg;
  rcfg.interval = us(50);
  rcfg.skew_threshold = 256 * KiB;
  rcfg.bytes_per_tick = 128 * KiB;
  Rebalancer rebalancer(cluster, mover, rcfg);
  rebalancer.set_detector(&detector);

  std::vector<TimePs> detected, rejoined;
  detector.set_on_failure([&](net::NodeId, TimePs at) { detected.push_back(at); });
  detector.set_on_rejoin([&](net::NodeId, TimePs at) { rejoined.push_back(at); });

  // Rolling schedule: each storage node down for ~150 us (past detection),
  // restarts staggered 350 us apart so only one node is ever dark.
  Rng jitter(seed);
  net::FaultPlan plan;
  plan.set_seed(seed);
  std::vector<TimePs> restarts;
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    const net::NodeId node = cluster.storage_node(i).id();
    const TimePs kill_at = t0 + us(150) + static_cast<TimePs>(i) * us(350) +
                           jitter.next_below(us(20));
    const TimePs restart_time = kill_at + us(150);
    plan.kill_node(node, kill_at);
    plan.restart_at(node, restart_time);
    restarts.push_back(restart_time);
  }
  cluster.network().install_faults(plan);
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    const net::NodeId node = cluster.storage_node(i).id();
    cluster.sim().schedule_fence_at(restarts[i], [&cluster, node] {
      cluster.storage_by_node(node).restart_dfs();
    });
  }

  detector.start();
  rebalancer.start();
  const TimePs t_stop = t0 + us(150) + 4 * us(350) + us(400);
  cluster.sim().schedule_at(t_stop, [&] {
    rebalancer.stop();
    detector.stop();
  });

  // Sustained mixed load over pre-created replicated objects for the whole
  // storm, with a goodput timeline wide enough to show the per-node dips.
  workload::TenantSpec tenant;
  tenant.name = "roll";
  tenant.objects = 8;
  tenant.object_size = 64 * KiB;
  tenant.policy = repl2;
  tenant.io_bytes = 4 * KiB;
  tenant.mix.read = 0.5;
  tenant.mix.write = 0.5;
  tenant.mix.append = 0.0;
  tenant.mix.stat = 0.0;
  workload::EngineConfig ecfg;
  ecfg.users = 1000;
  ecfg.client_slots = 2;
  ecfg.rate_ops_per_s = 2e5;
  ecfg.duration = us(1600);
  ecfg.goodput_window = us(100);
  ecfg.seed = seed;
  ecfg.retries = 1;
  ecfg.timeout = us(40);
  workload::Engine engine(cluster, ecfg, {tenant});
  engine.run();  // drains once the periodic services stop at t_stop

  EXPECT_EQ(golden_written, 3) << "seed " << seed;
  const auto& stats = engine.stats();
  EXPECT_GT(stats.completed, 0u) << "seed " << seed;
  EXPECT_FALSE(stats.goodput_timeline.empty()) << "seed " << seed;
  std::uint64_t timeline_sum = 0;
  for (const auto b : stats.goodput_timeline) timeline_sum += b;
  EXPECT_EQ(timeline_sum, stats.bytes_ok) << "seed " << seed;

  // Every node was detected down once and rejoined once; the cluster ends
  // whole: all alive, none excluded, none held, skew within threshold.
  EXPECT_EQ(detected.size(), cluster.storage_node_count()) << "seed " << seed;
  EXPECT_EQ(rejoined.size(), cluster.storage_node_count()) << "seed " << seed;
  EXPECT_EQ(detector.rejoins(), cluster.storage_node_count()) << "seed " << seed;
  EXPECT_TRUE(detector.failed().empty()) << "seed " << seed;
  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    const net::NodeId id = cluster.storage_node(i).id();
    EXPECT_EQ(detector.health(id), FailureDetector::Health::kAlive) << "seed " << seed;
    EXPECT_FALSE(cluster.metadata().excluded(id)) << "seed " << seed;
    EXPECT_FALSE(cluster.metadata().held(id)) << "seed " << seed;
  }
  EXPECT_LE(rebalancer.skew(), rcfg.skew_threshold) << "seed " << seed;

  // Zero data loss: the goldens survived four restarts byte-for-byte
  // (NVMM persists; only NIC state is cold after restart_dfs).
  Digest d;
  for (int i = 0; i < 3; ++i) {
    const Bytes got = read_current(cluster, golden_writer, "golden" + std::to_string(i),
                                   static_cast<std::uint32_t>(golden_size));
    EXPECT_EQ(got, golden[i]) << "golden" << i << " seed " << seed;
    d.bytes(got);
  }

  d.u64(engine.digest());
  d.u64(stats.completed);
  d.u64(stats.failed);
  d.u64(stats.bytes_ok);
  for (const auto b : stats.goodput_timeline) d.u64(b);
  for (const auto t : detected) d.u64(t);
  for (const auto t : rejoined) d.u64(t);
  d.u64(rebalancer.moves());
  d.u64(rebalancer.moved_bytes());
  d.u64(rebalancer.moves_aborted());
  d.detector(detector);
  d.counters(cluster.network().fault_counters());
  d.u64(cluster.sim().executed_events());
  return d.h;
}

TEST(Elasticity, RollingRestartUnderLoadZeroDataLoss) {
  const std::uint64_t seed = chaos_seed();
  const auto first = run_rolling_restart(seed);
  if (::testing::Test::HasFatalFailure()) return;
  const auto second = run_rolling_restart(seed);
  EXPECT_EQ(first, second) << "same seed must replay identically (seed " << seed << ")";
}

}  // namespace
}  // namespace nadfs
