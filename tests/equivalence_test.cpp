// Cross-protocol equivalence properties: every write protocol, whatever its
// data path (sPIN handlers, host CPU, triggered WQEs, client-driven), must
// leave the storage targets in the same functional end state. Plus wire
// fuzzing and a timing regression test for the cross-cluster wire-ordering
// artifact fixed by GapServer.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dfs/wire.hpp"
#include "protocols/cpu_repl.hpp"
#include "protocols/hyperloop.hpp"
#include "protocols/protocol.hpp"
#include "protocols/raw_rdma.hpp"
#include "protocols/rpc.hpp"

namespace nadfs {
namespace {

using namespace protocols;
using services::ClusterConfig;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

// ------------------------------- plain writes: all four Fig. 6 protocols

enum class PlainProto { kRaw, kRpc, kRpcRdma, kSpin };

struct PlainCase {
  PlainProto proto;
  std::size_t size;
};

std::string plain_case_name(const ::testing::TestParamInfo<PlainCase>& pinfo) {
  static const char* kNames[] = {"Raw", "Rpc", "RpcRdma", "Spin"};
  return std::string(kNames[static_cast<int>(pinfo.param.proto)]) +
         std::to_string(pinfo.param.size);
}

class PlainWriteEquivalence : public ::testing::TestWithParam<PlainCase> {};

TEST_P(PlainWriteEquivalence, DataLandsIdentically) {
  const auto [proto_kind, size] = GetParam();
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  cfg.install_dfs = proto_kind == PlainProto::kSpin;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("o", 2 * MiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  std::unique_ptr<WriteProtocol> proto;
  switch (proto_kind) {
    case PlainProto::kRaw: proto = std::make_unique<RawWrite>(cluster); break;
    case PlainProto::kRpc: proto = std::make_unique<RpcWrite>(cluster); break;
    case PlainProto::kRpcRdma: proto = std::make_unique<RpcRdmaWrite>(cluster); break;
    case PlainProto::kSpin: proto = std::make_unique<SpinWrite>(); break;
  }

  const Bytes data = random_bytes(size, size);
  bool ok = false;
  TimePs at = 0;
  proto->write(client, layout, cap, data, [&](bool o, TimePs t) {
    ok = o;
    at = t;
  });
  cluster.sim().run();

  ASSERT_TRUE(ok) << proto->name();
  EXPECT_GT(at, 0u);
  EXPECT_EQ(cluster.storage_node(0).target().read(layout.targets[0].addr, data.size()), data)
      << proto->name();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PlainWriteEquivalence,
    ::testing::Values(PlainCase{PlainProto::kRaw, 100}, PlainCase{PlainProto::kRaw, 300000},
                      PlainCase{PlainProto::kRpc, 100}, PlainCase{PlainProto::kRpc, 300000},
                      PlainCase{PlainProto::kRpcRdma, 100},
                      PlainCase{PlainProto::kRpcRdma, 300000},
                      PlainCase{PlainProto::kSpin, 100}, PlainCase{PlainProto::kSpin, 300000}),
    plain_case_name);

// ----------------------- replication: all five strategies, same end state

enum class ReplProto { kCpuRing, kCpuPbt, kFlat, kHyperLoop, kSpinRing, kSpinPbt };

struct ReplCase {
  ReplProto proto;
  std::uint8_t k;
  std::size_t size;
};

std::string repl_case_name(const ::testing::TestParamInfo<ReplCase>& pinfo) {
  static const char* kNames[] = {"CpuRing", "CpuPbt", "Flat", "HyperLoop", "SpinRing",
                                 "SpinPbt"};
  return std::string(kNames[static_cast<int>(pinfo.param.proto)]) + "_k" +
         std::to_string(pinfo.param.k) + "_" + std::to_string(pinfo.param.size);
}

class ReplicationEquivalence : public ::testing::TestWithParam<ReplCase> {};

TEST_P(ReplicationEquivalence, AllReplicasByteIdentical) {
  const auto [proto_kind, k, size] = GetParam();
  const bool spin =
      proto_kind == ReplProto::kSpinRing || proto_kind == ReplProto::kSpinPbt;
  ClusterConfig cfg;
  cfg.storage_nodes = k;
  cfg.install_dfs = spin;
  Cluster cluster(cfg);
  Client client(cluster, 0);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = proto_kind == ReplProto::kCpuPbt || proto_kind == ReplProto::kSpinPbt
                        ? dfs::ReplStrategy::kPbt
                        : dfs::ReplStrategy::kRing;
  policy.repl_k = k;
  const auto& layout = cluster.metadata().create("o", 1 * MiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  std::unique_ptr<WriteProtocol> proto;
  switch (proto_kind) {
    case ReplProto::kCpuRing:
      proto = std::make_unique<CpuRepl>(cluster, dfs::ReplStrategy::kRing, 16 * KiB);
      break;
    case ReplProto::kCpuPbt:
      proto = std::make_unique<CpuRepl>(cluster, dfs::ReplStrategy::kPbt, 16 * KiB);
      break;
    case ReplProto::kFlat: proto = std::make_unique<RdmaFlat>(cluster); break;
    case ReplProto::kHyperLoop: proto = std::make_unique<HyperLoop>(cluster, 32 * KiB); break;
    case ReplProto::kSpinRing:
    case ReplProto::kSpinPbt: proto = std::make_unique<SpinWrite>(); break;
  }

  const Bytes data = random_bytes(size, size * 7 + k);
  bool ok = false;
  proto->write(client, layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();

  ASSERT_TRUE(ok) << proto->name();
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data)
        << proto->name() << " replica on node " << coord.node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReplicationEquivalence,
    ::testing::Values(ReplCase{ReplProto::kCpuRing, 3, 50000},
                      ReplCase{ReplProto::kCpuPbt, 5, 50000},
                      ReplCase{ReplProto::kFlat, 3, 50000},
                      ReplCase{ReplProto::kHyperLoop, 3, 50000},
                      ReplCase{ReplProto::kSpinRing, 3, 50000},
                      ReplCase{ReplProto::kSpinPbt, 5, 50000},
                      ReplCase{ReplProto::kSpinRing, 8, 4096},
                      ReplCase{ReplProto::kHyperLoop, 6, 200000}),
    repl_case_name);

// ------------------------------------------------- wire-format fuzzing

TEST(WireFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(0xF0CC);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = rng.next_byte();
    try {
      const auto parsed = dfs::parse_request(junk);
      (void)parsed;  // parsed garbage is fine; the MAC check rejects it later
    } catch (const std::out_of_range&) {
      // expected for truncated buffers
    }
  }
}

TEST(WireFuzz, BitflippedHeadersEitherParseOrThrow) {
  // Take a valid request and flip every byte: the parser must never read
  // out of bounds or loop; validation semantics are handled elsewhere.
  dfs::DfsHeader hdr;
  hdr.greq_id = 1;
  dfs::WriteRequestHeader wrh;
  wrh.resiliency = dfs::Resiliency::kReplication;
  wrh.replicas = {{0, 0}, {1, 0}};
  Bytes valid = dfs::serialize_write_headers(hdr, wrh);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    Bytes mutated = valid;
    mutated[i] ^= 0xFF;
    try {
      (void)dfs::parse_request(mutated);
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(WireFuzz, MalformedFirstPacketIsDroppedByHandlers) {
  // A garbage "request" reaching the sPIN HH must be dropped without
  // crashing the device or leaking request-table slots.
  services::Cluster cluster;
  services::Client client(cluster, 0);
  auto& node = cluster.storage_node(0);

  net::Packet junk;
  junk.dst = node.id();
  junk.opcode = net::Opcode::kRdmaWrite;
  junk.msg_id = 0xDEAD;
  junk.pkt_count = 1;
  junk.data = {1, 2, 3, 4, 5};
  client.node().nic().post_message({std::move(junk)});
  cluster.sim().run();

  EXPECT_EQ(node.dfs_state()->table.in_use(), 0u);
  // A parse failure is malformed, not an auth failure: the two counters
  // are disjoint (the capability was never even reached).
  EXPECT_EQ(node.dfs_state()->malformed_requests, 1u);
  EXPECT_EQ(node.dfs_state()->auth_failures, 0u);
  EXPECT_EQ(node.target().bytes_written(), 0u);
}

// ------------------------------- timing regression: cross-cluster wires

TEST(TimingRegression, BackloggedClusterDoesNotStallFreshOne) {
  // Two messages on one node map to different PsPIN clusters. The first
  // (huge, EC-encode-heavy) builds a deep HPU backlog; the second (small,
  // cheap) must not inherit multi-microsecond handler stalls through the
  // shared egress wire (the FIFO-horizon ratchet fixed by GapServer).
  services::ClusterConfig cfg;
  cfg.storage_nodes = 5;
  cfg.clients = 2;
  services::Cluster cluster(cfg);
  services::Client heavy(cluster, 0), light(cluster, 1);

  services::FilePolicy ec;
  ec.resiliency = dfs::Resiliency::kErasureCoding;
  ec.ec_k = 3;
  ec.ec_m = 2;
  const auto& big = cluster.metadata().create("big", 1 * MiB, ec);
  const auto big_cap = cluster.metadata().grant(heavy.client_id(), big, auth::Right::kWrite);
  heavy.write(big, big_cap, random_bytes(1 * MiB, 1), [](bool, TimePs) {});

  services::FilePolicy repl;
  repl.resiliency = dfs::Resiliency::kReplication;
  repl.repl_k = 2;
  const auto& small = cluster.metadata().create("small", 8 * KiB, repl);
  const auto small_cap = cluster.metadata().grant(light.client_id(), small, auth::Right::kWrite);
  bool ok = false;
  TimePs at = 0;
  light.write(small, small_cap, random_bytes(8 * KiB, 2), [&](bool o, TimePs t) {
    ok = o;
    at = t;
  });
  cluster.sim().run();

  ASSERT_TRUE(ok);
  // The small replicated write is HPU-independent of the EC backlog; it
  // must complete in microseconds, not be serialized behind ~200 us of
  // encode work. (Pre-GapServer this regressed to >100 us.)
  EXPECT_LT(at, us(30));
}

}  // namespace
}  // namespace nadfs
