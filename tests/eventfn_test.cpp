// Direct coverage for sim::EventFn, the move-only small-buffer callable
// on the event hot path. The inline-vs-heap decision is not directly
// observable, so these tests pin it behaviorally: relocating an EventFn
// move-constructs (and destroys) an inline callable, while a heap
// callable is moved by stealing the pointer — its move constructor never
// runs. Lifetime counters verify both paths construct and destroy the
// callable exactly once overall.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/simulator.hpp"

namespace nadfs::sim {
namespace {

struct Counters {
  int constructed = 0;  // initial constructions (not moves)
  int moved = 0;
  int destroyed = 0;
  int invoked = 0;
  std::uintptr_t invoked_at = 0;  // address of the callable at invocation

  int live() const { return constructed + moved - destroyed; }
};

/// Callable padded to exactly `Size` bytes that reports every lifetime
/// event to an external Counters.
template <std::size_t Size>
struct Probe {
  explicit Probe(Counters* counters) : c(counters) { ++c->constructed; }
  Probe(Probe&& other) noexcept : c(other.c) { ++c->moved; }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;
  Probe& operator=(Probe&&) = delete;
  ~Probe() { ++c->destroyed; }
  void operator()() { ++c->invoked; }

  Counters* c;
  unsigned char pad[Size - sizeof(Counters*)];
};

using InlineProbe = Probe<EventFn::kInlineBytes>;          // exactly at the boundary
using OversizedProbe = Probe<EventFn::kInlineBytes + 8>;   // one word past it
static_assert(sizeof(InlineProbe) == EventFn::kInlineBytes);
static_assert(sizeof(OversizedProbe) > EventFn::kInlineBytes);

TEST(EventFn, ExactlyInlineSizeStaysInline) {
  Counters c;
  {
    EventFn fn{InlineProbe(&c)};
    EXPECT_EQ(c.constructed, 1);
    const int moves_after_wrap = c.moved;  // the wrap itself moves once
    EventFn moved = std::move(fn);
    // Inline storage: moving the EventFn must relocate (move-construct +
    // destroy) the callable itself.
    EXPECT_EQ(c.moved, moves_after_wrap + 1);
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_TRUE(static_cast<bool>(moved));
    moved();
    EXPECT_EQ(c.invoked, 1);
  }
  EXPECT_EQ(c.live(), 0);
}

TEST(EventFn, OneWordOverInlineSizeFallsBackToHeap) {
  Counters c;
  {
    EventFn fn{OversizedProbe(&c)};
    const int moves_after_wrap = c.moved;
    EventFn moved = std::move(fn);
    // Heap storage: the move steals the pointer; the callable itself must
    // NOT be move-constructed again.
    EXPECT_EQ(c.moved, moves_after_wrap);
    EXPECT_FALSE(static_cast<bool>(fn));
    moved();
    EXPECT_EQ(c.invoked, 1);
  }
  EXPECT_EQ(c.live(), 0);
}

TEST(EventFn, OverAlignedCallableUsesHeapEvenWhenSmall) {
  struct alignas(2 * alignof(std::max_align_t)) OverAligned {
    explicit OverAligned(Counters* counters) : c(counters) { ++c->constructed; }
    OverAligned(OverAligned&& other) noexcept : c(other.c) { ++c->moved; }
    ~OverAligned() { ++c->destroyed; }
    void operator()() {
      ++c->invoked;
      c->invoked_at = reinterpret_cast<std::uintptr_t>(this);
    }
    Counters* c;
  };
  static_assert(sizeof(OverAligned) <= EventFn::kInlineBytes);
  static_assert(alignof(OverAligned) > alignof(std::max_align_t));

  Counters c;
  {
    EventFn fn{OverAligned(&c)};
    const int moves_after_wrap = c.moved;
    EventFn moved = std::move(fn);
    // Inline storage is only max_align_t-aligned, so this must have taken
    // the heap path: pointer steal, no relocation.
    EXPECT_EQ(c.moved, moves_after_wrap);
    moved();
    EXPECT_EQ(c.invoked, 1);
    // The heap allocation must honor the extended alignment (C++17
    // aligned operator new).
    EXPECT_EQ(c.invoked_at % alignof(OverAligned), 0u);
  }
  EXPECT_EQ(c.live(), 0);
}

TEST(EventFn, ThrowingMoveConstructorForcesHeap) {
  struct ThrowingMove {
    explicit ThrowingMove(Counters* counters) : c(counters) { ++c->constructed; }
    ThrowingMove(ThrowingMove&& other) noexcept(false) : c(other.c) { ++c->moved; }
    ~ThrowingMove() { ++c->destroyed; }
    void operator()() { ++c->invoked; }
    Counters* c;
  };
  static_assert(sizeof(ThrowingMove) <= EventFn::kInlineBytes);

  Counters c;
  {
    EventFn fn{ThrowingMove(&c)};
    const int moves_after_wrap = c.moved;
    EventFn moved = std::move(fn);
    // Inline relocation must be noexcept, so a throwing-move callable has
    // to live on the heap: no relocation on EventFn move.
    EXPECT_EQ(c.moved, moves_after_wrap);
    moved();
    EXPECT_EQ(c.invoked, 1);
  }
  EXPECT_EQ(c.live(), 0);
}

TEST(EventFn, MoveAssignOverLiveInlineCallableDestroysIt) {
  Counters first;
  Counters second;
  {
    EventFn a{InlineProbe(&first)};
    EventFn b{InlineProbe(&second)};
    EXPECT_EQ(first.live(), 1);
    a = std::move(b);
    // The callable previously held by `a` is destroyed exactly when the
    // assignment happens, not leaked and not double-destroyed later.
    EXPECT_EQ(first.live(), 0);
    EXPECT_EQ(second.live(), 1);
    a();
    EXPECT_EQ(second.invoked, 1);
    EXPECT_EQ(first.invoked, 0);
  }
  EXPECT_EQ(first.live(), 0);
  EXPECT_EQ(second.live(), 0);
}

TEST(EventFn, MoveAssignOverLiveHeapCallableDestroysIt) {
  Counters first;
  Counters second;
  {
    EventFn a{OversizedProbe(&first)};
    EventFn b{OversizedProbe(&second)};
    a = std::move(b);
    EXPECT_EQ(first.live(), 0);
    EXPECT_EQ(second.live(), 1);
    a();
    EXPECT_EQ(second.invoked, 1);
  }
  EXPECT_EQ(second.live(), 0);
}

TEST(EventFn, SelfMoveAssignIsSafe) {
  Counters c;
  {
    EventFn fn{InlineProbe(&c)};
    EventFn& alias = fn;  // launder the self-move past -Wself-move
    fn = std::move(alias);
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_EQ(c.live(), 1);
    fn();
    EXPECT_EQ(c.invoked, 1);
  }
  EXPECT_EQ(c.live(), 0);
}

TEST(EventFn, MovedFromIsEmptyAndReassignable) {
  Counters c;
  EventFn fn{InlineProbe(&c)};
  EventFn stolen = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  // A moved-from EventFn must accept a fresh callable.
  int hits = 0;
  fn = EventFn{[&hits] { ++hits; }};
  fn();
  EXPECT_EQ(hits, 1);
  stolen();
  EXPECT_EQ(c.invoked, 1);
}

TEST(EventFn, LargeArrayCaptureRoundTrips) {
  // 256-byte capture: far past the inline buffer, contents must survive
  // wrap + move + invoke intact.
  std::array<std::uint8_t, 256> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 7);
  std::uint32_t sum = 0;
  EventFn fn{[big, &sum] {
    for (const auto v : big) sum += v;
  }};
  EventFn moved = std::move(fn);
  moved();
  std::uint32_t expect = 0;
  for (std::size_t i = 0; i < big.size(); ++i) expect += static_cast<std::uint8_t>(i * 7);
  EXPECT_EQ(sum, expect);
}

TEST(EventFn, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(moved));
}

}  // namespace
}  // namespace nadfs::sim
