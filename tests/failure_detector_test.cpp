// Tests of the heartbeat failure detector: healthy clusters stay healthy,
// killed nodes walk alive -> suspected -> failed deterministically, failed
// nodes leave the metadata placement pool, and auto_rebuild feeds the
// detector's own failed set into the recovery manager.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "services/failure_detector.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FailureDetector;
using services::FailureDetectorConfig;
using services::FilePolicy;
using services::RecoveryManager;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

TEST(FailureDetector, HealthyClusterStaysAlive) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  Cluster cluster(cfg);
  Client prober(cluster, 0);
  FailureDetector detector(cluster, prober);

  detector.start();
  cluster.sim().run_until(ms(1));
  detector.stop();
  cluster.sim().run();

  for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
    EXPECT_EQ(detector.health(cluster.storage_node(i).id()), FailureDetector::Health::kAlive);
  }
  EXPECT_TRUE(detector.failed().empty());
  EXPECT_EQ(detector.probes_missed(), 0u);
  // ~50 ticks x 4 nodes at the default 20 us cadence.
  EXPECT_GT(detector.probes_sent(), 100u);
  // Quiesce: every probe resolved, nothing leaked.
  EXPECT_EQ(prober.node().nic().pending_read_count(), 0u);
  EXPECT_EQ(prober.tracker().pending_count(), 0u);
}

TEST(FailureDetector, KilledNodeWalksSuspectedThenFailed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.clients = 1;
  Cluster cluster(cfg);
  Client prober(cluster, 0);
  FailureDetector detector(cluster, prober);  // 20 us probes, 10 us timeout, fail after 3

  const net::NodeId victim = cluster.storage_node(1).id();
  cluster.network().faults().kill_node(victim, us(50));

  net::NodeId failed_node = net::kInvalidNode;
  TimePs failed_time = 0;
  unsigned failures = 0;
  detector.set_on_failure([&](net::NodeId node, TimePs at) {
    ++failures;
    failed_node = node;
    failed_time = at;
  });

  // Kill at 50 us: the 60/80/100 us probes miss (deadlines 70/90/110), so
  // at 95 us the victim is suspected but not yet failed.
  cluster.sim().schedule(us(95), [&] {
    EXPECT_EQ(detector.health(victim), FailureDetector::Health::kSuspected);
  });

  detector.start();
  cluster.sim().run_until(ms(1));
  detector.stop();
  cluster.sim().run();

  EXPECT_EQ(detector.health(victim), FailureDetector::Health::kFailed);
  EXPECT_EQ(failures, 1u);  // sticky: exactly one transition
  EXPECT_EQ(failed_node, victim);
  EXPECT_GT(failed_time, us(50));
  EXPECT_EQ(detector.failed_at(victim), failed_time);
  EXPECT_EQ(detector.failed().count(victim), 1u);
  EXPECT_GE(detector.probes_missed(), 3u);

  // The victim left the placement pool: metadata knows, and new objects
  // avoid it.
  EXPECT_TRUE(cluster.metadata().excluded(victim));
  for (int i = 0; i < 8; ++i) {
    const auto& layout =
        cluster.metadata().create("post-" + std::to_string(i), 4096, FilePolicy{});
    EXPECT_NE(layout.targets[0].node, victim);
  }
  EXPECT_EQ(prober.tracker().pending_count(), 0u);
  EXPECT_EQ(prober.node().nic().pending_read_count(), 0u);
}

TEST(FailureDetector, AutoRebuildRepairsEcObjectFromDetectorView) {
  ClusterConfig cfg;
  cfg.storage_nodes = 7;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client writer(cluster, 0);
  Client prober(cluster, 1);
  RecoveryManager recovery(cluster, writer);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const std::size_t size = 48000;
  const auto& layout = cluster.metadata().create("obj", size, policy);
  const auto cap = cluster.metadata().grant(writer.client_id(), layout, auth::Right::kWrite);
  const Bytes data = random_bytes(size, 42);
  bool wrote = false;
  writer.write(layout, cap, data, [&](bool ok, TimePs) { wrote = ok; });
  cluster.sim().run();
  ASSERT_TRUE(wrote);

  const net::NodeId victim = layout.parity[0].node;
  cluster.network().faults().kill_node(victim, cluster.sim().now() + us(5));

  FailureDetector detector(cluster, prober);
  std::optional<services::FileLayout> repaired;
  unsigned rebuilds = 0;
  detector.auto_rebuild(recovery, "obj",
                        [&](std::optional<services::FileLayout> l, TimePs) {
                          ++rebuilds;
                          repaired = std::move(l);
                        });
  detector.start();
  cluster.sim().run_until(cluster.sim().now() + ms(2));
  detector.stop();
  cluster.sim().run();

  ASSERT_EQ(rebuilds, 1u);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(recovery.chunks_rebuilt(), 1u);
  for (const auto& c : repaired->targets) EXPECT_NE(c.node, victim);
  for (const auto& c : repaired->parity) EXPECT_NE(c.node, victim);

  // The republished layout reconstructs the original bytes even with the
  // *other* parity node masked out (proves the rebuilt chunk is correct).
  const auto* current = cluster.metadata().lookup("obj");
  ASSERT_NE(current, nullptr);
  std::optional<Bytes> got;
  recovery.degraded_read(*current, {current->parity[1].node},
                         [&](std::optional<Bytes> d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);

  EXPECT_EQ(writer.tracker().pending_count(), 0u);
  EXPECT_EQ(prober.tracker().pending_count(), 0u);
}

}  // namespace
}  // namespace nadfs
