// Unit tests for the fault-injection layer (net/fault.hpp + its hooks in
// Network::inject): scheduled node kills and link-down windows, seeded
// drop/duplicate/corrupt rates, per-fault counters, and determinism of the
// whole mechanism.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace nadfs {
namespace {

struct Recorder : net::PacketSink {
  std::vector<net::Packet> pkts;
  void on_packet(net::Packet&& p) override { pkts.push_back(std::move(p)); }
};

net::Packet mk(net::NodeId src, net::NodeId dst, Bytes data = {}) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.opcode = net::Opcode::kSend;
  p.msg_id = 1;
  p.data = std::move(data);
  return p;
}

struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  Recorder a, b;
  net::NodeId na, nb;
  Rig() : na(net.add_node(a)), nb(net.add_node(b)) {}
};

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, KillBoundaryIsInclusive) {
  net::FaultPlan plan;
  plan.kill_node(3, us(10));
  EXPECT_TRUE(plan.node_alive(3, us(10) - 1));
  EXPECT_FALSE(plan.node_alive(3, us(10)));
  EXPECT_FALSE(plan.node_alive(3, us(999)));
  EXPECT_TRUE(plan.node_alive(4, us(999)));
  // A second, earlier kill wins; a later one is ignored.
  plan.kill_node(3, us(5));
  EXPECT_FALSE(plan.node_alive(3, us(5)));
  plan.kill_node(3, us(50));
  EXPECT_FALSE(plan.node_alive(3, us(5)));
}

TEST(FaultPlan, LinkDownWindowIsHalfOpen) {
  net::FaultPlan plan;
  plan.link_down(1, us(2), us(4));
  EXPECT_TRUE(plan.link_up(1, us(2) - 1));
  EXPECT_FALSE(plan.link_up(1, us(2)));
  EXPECT_FALSE(plan.link_up(1, us(4) - 1));
  EXPECT_TRUE(plan.link_up(1, us(4)));
  // Open-ended outage.
  plan.link_down(2, us(1));
  EXPECT_FALSE(plan.link_up(2, ms(100)));
  EXPECT_TRUE(plan.reachable(3, us(3)));
  EXPECT_FALSE(plan.reachable(1, us(3)));
}

TEST(FaultPlan, EmptyReflectsConfiguration) {
  net::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.set_seed(42);  // a seed alone configures nothing
  EXPECT_TRUE(plan.empty());
  plan.set_drop_rate(0.1);
  EXPECT_FALSE(plan.empty());
  net::FaultPlan trunk_plan;
  trunk_plan.trunk_down(0, 2, us(1));
  EXPECT_FALSE(trunk_plan.empty());
}

TEST(FaultPlan, OverlappingUnsortedWindowsCompose) {
  // Windows may be added out of order and may overlap: a time is down if
  // *any* window covers it.
  net::FaultPlan plan;
  plan.link_down(1, us(10), us(20));
  plan.link_down(1, us(5), us(12));   // unsorted + overlapping
  plan.link_down(1, us(30));          // open-ended (kNeverPs)
  EXPECT_TRUE(plan.link_up(1, us(5) - 1));
  EXPECT_FALSE(plan.link_up(1, us(5)));
  EXPECT_FALSE(plan.link_up(1, us(11)));  // covered by both
  EXPECT_FALSE(plan.link_up(1, us(15)));  // covered by the first only
  EXPECT_TRUE(plan.link_up(1, us(20)));   // half-open: up again at 20
  EXPECT_TRUE(plan.link_up(1, us(30) - 1));
  EXPECT_FALSE(plan.link_up(1, us(30)));
  EXPECT_FALSE(plan.link_up(1, net::kNeverPs - 1));  // never comes back
}

TEST(FaultPlan, ReachableComposesKillAndLink) {
  // reachable == alive AND link up; either alone makes the node dark.
  net::FaultPlan plan;
  plan.link_down(6, us(10), us(20));
  plan.kill_node(6, us(50));
  EXPECT_TRUE(plan.reachable(6, us(9)));
  EXPECT_FALSE(plan.reachable(6, us(15)));  // link down, still alive
  EXPECT_TRUE(plan.reachable(6, us(20)));   // window over, not yet killed
  EXPECT_FALSE(plan.reachable(6, us(50)));  // killed (inclusive boundary)
  EXPECT_FALSE(plan.reachable(6, net::kNeverPs - 1));  // kill is sticky
}

TEST(FaultPlan, RestartClampsCoveringWindow) {
  net::FaultPlan plan;
  plan.kill_node(3, us(10));  // dead forever...
  plan.restart_at(3, us(40));  // ...until revived
  EXPECT_TRUE(plan.node_alive(3, us(10) - 1));
  EXPECT_FALSE(plan.node_alive(3, us(10)));
  EXPECT_FALSE(plan.node_alive(3, us(40) - 1));
  EXPECT_TRUE(plan.node_alive(3, us(40)));  // half-open: up at the restart
  EXPECT_TRUE(plan.node_alive(3, net::kNeverPs - 1));
  // Restarting a node that was never killed is a no-op.
  plan.restart_at(7, us(5));
  EXPECT_TRUE(plan.node_alive(7, us(1)));
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RestartLeavesFutureKillWindowsAlone) {
  // A rolling schedule composes: kill / restart / re-kill / re-restart.
  net::FaultPlan plan;
  plan.kill_node(2, us(10));
  plan.kill_node(2, us(100));  // scheduled re-kill, entirely in the future
  plan.restart_at(2, us(30));  // clamps only the covering window
  EXPECT_FALSE(plan.node_alive(2, us(10)));
  EXPECT_TRUE(plan.node_alive(2, us(30)));
  EXPECT_TRUE(plan.node_alive(2, us(100) - 1));
  EXPECT_FALSE(plan.node_alive(2, us(100)));  // the re-kill still fires
  plan.restart_at(2, us(200));
  EXPECT_TRUE(plan.node_alive(2, us(200)));
}

TEST(FaultPlan, KillWithExplicitUntilIsHalfOpen) {
  net::FaultPlan plan;
  plan.kill_node(5, us(10), us(20));
  EXPECT_TRUE(plan.node_alive(5, us(10) - 1));
  EXPECT_FALSE(plan.node_alive(5, us(10)));
  EXPECT_FALSE(plan.node_alive(5, us(20) - 1));
  EXPECT_TRUE(plan.node_alive(5, us(20)));
}

TEST(FaultPlan, NodeUpAfterScansOverlappingWindows) {
  net::FaultPlan plan;
  EXPECT_EQ(plan.node_up_after(9, us(3)), us(3));  // never killed: now
  plan.kill_node(9, us(10), us(20));
  plan.kill_node(9, us(15), us(30));  // overlapping — chains past us(20)
  EXPECT_EQ(plan.node_up_after(9, us(5)), us(5));   // before the outage
  EXPECT_EQ(plan.node_up_after(9, us(12)), us(30)); // fixed point over both
  EXPECT_EQ(plan.node_up_after(9, us(30)), us(30));
  plan.kill_node(9, us(50));  // open-ended
  EXPECT_EQ(plan.node_up_after(9, us(60)), net::kNeverPs);
}

TEST(FaultPlan, TrunkWindowsAreUnorderedPairsHalfOpen) {
  net::FaultPlan plan;
  plan.trunk_down(2, 0, us(1), us(3));  // (2,0) and (0,2) are the same trunk
  EXPECT_TRUE(plan.trunk_up(0, 2, us(1) - 1));
  EXPECT_FALSE(plan.trunk_up(0, 2, us(1)));
  EXPECT_FALSE(plan.trunk_up(2, 0, us(3) - 1));
  EXPECT_TRUE(plan.trunk_up(2, 0, us(3)));
  EXPECT_TRUE(plan.trunk_up(1, 2, us(2)));  // other trunks unaffected
  // Open-ended cut on a different pair.
  plan.trunk_down(1, 3, us(5));
  EXPECT_FALSE(plan.trunk_up(3, 1, ms(100)));
}

// ------------------------------------------------------- network hooks

TEST(FaultNet, UnarmedNetworkDeliversEverything) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.net.inject(mk(rig.na, rig.nb, Bytes(64, 7)));
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 10u);
  EXPECT_FALSE(rig.net.faults_armed());
  EXPECT_EQ(rig.net.fault_counters().total_dropped(), 0u);
}

TEST(FaultNet, DeadSourceDropsAtInjection) {
  Rig rig;
  net::FaultPlan plan;
  plan.kill_node(rig.na, us(1));
  rig.net.install_faults(plan);

  rig.net.inject(mk(rig.na, rig.nb));  // before the kill: delivered
  rig.sim.schedule(us(2), [&] {
    const auto w = rig.net.inject(mk(rig.na, rig.nb));  // after: tx drop
    EXPECT_EQ(w.start, w.end);  // empty serialization window
  });
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
  EXPECT_EQ(rig.net.fault_counters().tx_drops, 1u);
  EXPECT_EQ(rig.net.fault_counters().rx_drops, 0u);
}

TEST(FaultNet, DeadDestinationDropsAtSwitch) {
  Rig rig;
  net::FaultPlan plan;
  plan.kill_node(rig.nb, us(1));
  rig.net.install_faults(plan);

  rig.net.inject(mk(rig.na, rig.nb));
  rig.sim.schedule(us(2), [&] { rig.net.inject(mk(rig.na, rig.nb)); });
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
  EXPECT_EQ(rig.net.fault_counters().rx_drops, 1u);
}

TEST(FaultNet, LinkDownWindowDropsThenRecovers) {
  Rig rig;
  net::FaultPlan plan;
  plan.link_down(rig.nb, us(1), us(3));
  rig.net.install_faults(plan);

  rig.sim.schedule(us(2), [&] { rig.net.inject(mk(rig.na, rig.nb)); });  // in window
  rig.sim.schedule(us(4), [&] { rig.net.inject(mk(rig.na, rig.nb)); });  // recovered
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
  EXPECT_EQ(rig.net.fault_counters().rx_drops, 1u);
}

TEST(FaultNet, SeededDropRateIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rig rig;
    net::FaultPlan plan;
    plan.set_drop_rate(0.3);
    plan.set_seed(seed);
    rig.net.install_faults(plan);
    for (int i = 0; i < 1000; ++i) rig.net.inject(mk(rig.na, rig.nb, Bytes(32, 1)));
    rig.sim.run();
    return std::pair<std::size_t, std::uint64_t>{rig.b.pkts.size(),
                                                 rig.net.fault_counters().random_drops};
  };
  const auto [delivered1, drops1] = run(7);
  const auto [delivered2, drops2] = run(7);
  EXPECT_EQ(delivered1, delivered2);
  EXPECT_EQ(drops1, drops2);
  EXPECT_EQ(delivered1 + drops1, 1000u);
  // ~300 of 1000 at p=0.3; generous envelope, this is not a statistics test.
  EXPECT_GT(drops1, 200u);
  EXPECT_LT(drops1, 400u);
  // A different seed draws a different pattern (astronomically unlikely tie
  // on the exact drop set; allow a tie on the count).
  const auto [delivered3, drops3] = run(8);
  EXPECT_EQ(delivered3 + drops3, 1000u);
}

// Sink that stamps each delivery with its simulated arrival time.
struct TimedRecorder : net::PacketSink {
  sim::Simulator* sim = nullptr;
  std::vector<std::pair<TimePs, net::Packet>> pkts;
  void on_packet(net::Packet&& p) override { pkts.emplace_back(sim->now(), std::move(p)); }
};

TEST(FaultNet, DuplicateDeliversOriginalFirstCopyBehind) {
  // Regression: the duplicated copy used to be handed to the downlink
  // *before* the original, so the copy owned the first serialization
  // window. The original must go first; the copy rides exactly one
  // downlink window behind it.
  sim::Simulator sim;
  net::Network net{sim};
  TimedRecorder a, b;
  a.sim = b.sim = &sim;
  const net::NodeId na = net.add_node(a);
  const net::NodeId nb = net.add_node(b);
  net::FaultPlan plan;
  plan.set_duplicate_rate(1.0);
  net.install_faults(plan);

  net::Packet p = mk(na, nb, Bytes(256, 3));
  p.seq = 7;
  const TimePs ser = net.config().link_bandwidth.transfer_time(p.wire_size());
  net.inject(std::move(p));
  sim.run();

  ASSERT_EQ(b.pkts.size(), 2u);
  EXPECT_EQ(net.fault_counters().duplicates, 1u);
  EXPECT_EQ(b.pkts[0].second.seq, 7u);
  EXPECT_EQ(b.pkts[1].second.seq, 7u);
  EXPECT_EQ(b.pkts[0].second.data, b.pkts[1].second.data);
  EXPECT_LT(b.pkts[0].first, b.pkts[1].first);
  // Back-to-back windows on the shared downlink: the second arrival trails
  // the first by exactly one serialization time.
  EXPECT_EQ(b.pkts[1].first - b.pkts[0].first, ser);
}

TEST(FaultNet, TxReachabilityDecidedAtSerializationStart) {
  // Regression: source reachability used to be decided at injection time,
  // so a packet injected while the node was alive transmitted even if the
  // node died before the uplink queue drained to it. Saturate the uplink
  // at t=0, kill the source mid-queue, and pin the corrected drop count.
  Rig rig;
  net::Packet probe = mk(rig.na, rig.nb, Bytes(1024, 5));
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(probe.wire_size());
  // Packet i serializes in [i*ser, (i+1)*ser). Kill at exactly 3*ser: the
  // kill boundary is inclusive, so packets 3..7 (queued but not yet on the
  // wire) never transmit even though all 8 were injected while alive.
  net::FaultPlan plan;
  plan.kill_node(rig.na, 3 * ser);
  rig.net.install_faults(plan);
  for (int i = 0; i < 8; ++i) {
    net::Packet p = mk(rig.na, rig.nb, Bytes(1024, 5));
    p.seq = static_cast<std::uint32_t>(i);
    rig.net.inject(std::move(p));
  }
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 3u);
  EXPECT_EQ(rig.net.fault_counters().tx_drops, 5u);
  for (std::size_t i = 0; i < rig.b.pkts.size(); ++i) {
    EXPECT_EQ(rig.b.pkts[i].seq, i);  // survivors are the head of the queue
  }
}

TEST(FaultNet, RestartReadmitsTrafficBothDirections) {
  // Tentpole re-admission: after restart_at, the first packet whose uplink
  // window starts at or after the restart transmits — no re-registration
  // at the network layer. Both roles (revived source, revived destination)
  // recover.
  Rig rig;
  net::FaultPlan plan;
  plan.kill_node(rig.na, us(1));
  plan.restart_at(rig.na, us(5));
  rig.net.install_faults(plan);

  rig.sim.schedule(us(2), [&] { rig.net.inject(mk(rig.na, rig.nb)); });  // dead: tx drop
  rig.sim.schedule(us(3), [&] { rig.net.inject(mk(rig.nb, rig.na)); });  // dead dst: rx drop
  rig.sim.schedule(us(5), [&] { rig.net.inject(mk(rig.na, rig.nb)); });  // revived: delivered
  rig.sim.schedule(us(6), [&] { rig.net.inject(mk(rig.nb, rig.na)); });  // revived: delivered
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
  EXPECT_EQ(rig.a.pkts.size(), 1u);
  EXPECT_EQ(rig.net.fault_counters().tx_drops, 1u);
  EXPECT_EQ(rig.net.fault_counters().rx_drops, 1u);
}

TEST(FaultNet, MidRunRestartViaFaultsAccessor) {
  // Chaos hooks add restarts mid-run through faults(); a future-dated
  // restart is safe because the plan is queried by time.
  Rig rig;
  net::FaultPlan plan;
  plan.kill_node(rig.na, us(1));
  rig.net.install_faults(plan);
  rig.sim.schedule(us(2), [&] {
    rig.net.faults().restart_at(rig.na, us(4));
    rig.net.inject(mk(rig.na, rig.nb));  // still dead now
  });
  rig.sim.schedule(us(4), [&] { rig.net.inject(mk(rig.na, rig.nb)); });
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
  EXPECT_EQ(rig.net.fault_counters().tx_drops, 1u);
}

TEST(FaultNet, DuplicateRateDeliversCopies) {
  Rig rig;
  net::FaultPlan plan;
  plan.set_duplicate_rate(1.0);
  rig.net.install_faults(plan);
  for (int i = 0; i < 5; ++i) rig.net.inject(mk(rig.na, rig.nb, Bytes(16, 9)));
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 10u);
  EXPECT_EQ(rig.net.fault_counters().duplicates, 5u);
}

TEST(FaultNet, CorruptionFlipsPayloadBytes) {
  Rig rig;
  net::FaultPlan plan;
  plan.set_corrupt_rate(1.0);
  rig.net.install_faults(plan);
  const Bytes orig(128, 0xAB);
  for (int i = 0; i < 8; ++i) rig.net.inject(mk(rig.na, rig.nb, orig));
  // Empty payloads cannot be corrupted (the draw still happens).
  rig.net.inject(mk(rig.na, rig.nb));
  rig.sim.run();
  ASSERT_EQ(rig.b.pkts.size(), 9u);
  EXPECT_EQ(rig.net.fault_counters().corruptions, 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& got = rig.b.pkts[i].data;
    ASSERT_EQ(got.size(), orig.size());
    std::size_t diffs = 0;
    for (std::size_t j = 0; j < got.size(); ++j) diffs += got[j] != orig[j];
    EXPECT_EQ(diffs, 1u) << "packet " << i;  // exactly one byte flipped
  }
  EXPECT_TRUE(rig.b.pkts[8].data.empty());
}

TEST(FaultNet, FaultsAccessorArmsAndAllowsMidRunKills) {
  // The chaos-test idiom: hooks add future-dated kills while the sim runs.
  Rig rig;
  rig.net.faults();  // arms an empty plan
  EXPECT_TRUE(rig.net.faults_armed());
  rig.net.inject(mk(rig.na, rig.nb));
  rig.sim.schedule(us(1), [&] {
    rig.net.faults().kill_node(rig.nb, rig.sim.now() + us(1));
    rig.net.inject(mk(rig.na, rig.nb));            // still deliverable
  });
  rig.sim.schedule(us(3), [&] { rig.net.inject(mk(rig.na, rig.nb)); });  // dropped
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 2u);
  EXPECT_EQ(rig.net.fault_counters().rx_drops, 1u);
}

TEST(FaultNet, InstallResetsCountersAndRng) {
  Rig rig;
  net::FaultPlan plan;
  plan.set_drop_rate(1.0);
  rig.net.install_faults(plan);
  for (int i = 0; i < 3; ++i) rig.net.inject(mk(rig.na, rig.nb));
  rig.sim.run();
  EXPECT_EQ(rig.net.fault_counters().random_drops, 3u);
  rig.net.install_faults(net::FaultPlan{});
  EXPECT_EQ(rig.net.fault_counters().random_drops, 0u);
  rig.net.inject(mk(rig.na, rig.nb));
  rig.sim.run();
  EXPECT_EQ(rig.b.pkts.size(), 1u);
}

}  // namespace
}  // namespace nadfs
