// Unit tests for the host CPU model, the GapServer reservation allocator,
// the control-plane services, and the client-side ack tracker.
#include <gtest/gtest.h>

#include "host/cpu.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"
#include "sim/resource.hpp"

namespace nadfs {
namespace {

// ------------------------------------------------------------ GapServer

TEST(GapServer, AppendsWhenInOrder) {
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));
  const auto w1 = srv.reserve(1000);
  const auto w2 = srv.reserve(1000);
  EXPECT_EQ(w1.start, 0u);
  EXPECT_EQ(w2.start, w1.end);
}

TEST(GapServer, FillsGapsBeforeFutureReservations) {
  // The property FifoServer lacks: a far-future reservation must not starve
  // an earlier-ready one (the cross-cluster wire artifact).
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));
  const auto far = srv.reserve(1000, us(100));
  EXPECT_EQ(far.start, us(100));
  const auto near = srv.reserve(1000, ns(10));
  EXPECT_EQ(near.start, ns(10));  // fits in the idle window before 100 us
  EXPECT_LT(near.end, far.start);
}

TEST(GapServer, SkipsTooSmallGaps) {
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));  // 20 ps/B
  srv.reserve_time(ns(10), ns(0));    // busy [0, 10ns)
  srv.reserve_time(ns(10), ns(12));   // busy [12, 22ns)
  // 4 ns job wants t=9: the [10,12) gap is too small; next gap is at 22 ns.
  const auto w = srv.reserve_time(ns(4), ns(9));
  EXPECT_EQ(w.start, ns(22));
}

TEST(GapServer, CoalescesIntervals) {
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));
  srv.reserve_time(ns(10), 0);
  srv.reserve_time(ns(10), ns(10));
  srv.reserve_time(ns(10), ns(20));
  EXPECT_EQ(srv.interval_count(), 1u);
  EXPECT_EQ(srv.horizon(), ns(30));
}

TEST(GapServer, ZeroDurationIsFree) {
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));
  srv.reserve_time(ns(100), 0);
  const auto w = srv.reserve_time(0, ns(50));
  EXPECT_EQ(w.start, ns(50));
  EXPECT_EQ(w.end, ns(50));
}

TEST(GapServer, NeverReservesInThePast) {
  sim::Simulator sim;
  sim::GapServer srv(sim, Bandwidth::from_gbps(400.0));
  sim.schedule(us(1), [&] {
    const auto w = srv.reserve_time(ns(5), 0);
    EXPECT_GE(w.start, us(1));
  });
  sim.run();
}

// ------------------------------------------------------------- host CPU

TEST(HostCpu, RunFiresAfterCost) {
  sim::Simulator sim;
  host::Cpu cpu(sim);
  TimePs fired = 0;
  cpu.run(ns(500), 0, [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, ns(500));
}

TEST(HostCpu, CoresRunInParallel) {
  sim::Simulator sim;
  host::CpuConfig cfg;
  cfg.cores = 2;
  host::Cpu cpu(sim, cfg);
  const TimePs a = cpu.busy(us(10));
  const TimePs b = cpu.busy(us(10));
  const TimePs c = cpu.busy(us(10));
  EXPECT_EQ(a, us(10));
  EXPECT_EQ(b, us(10));   // second core
  EXPECT_EQ(c, us(20));   // queued behind one of them
}

TEST(HostCpu, CopyChargesMemcpyBandwidth) {
  sim::Simulator sim;
  host::CpuConfig cfg;
  cfg.memcpy_bw = Bandwidth::from_gbytes_per_sec(25.0);  // 40 ps/B
  host::Cpu cpu(sim, cfg);
  EXPECT_EQ(cpu.copy(1 * MiB), TimePs{1024 * 1024 * 40});
  EXPECT_EQ(cpu.memcpy_time(1000), TimePs{40000});
}

TEST(HostCpu, EarliestHonored) {
  sim::Simulator sim;
  host::Cpu cpu(sim);
  EXPECT_EQ(cpu.busy(ns(10), us(3)), us(3) + ns(10));
}

// ---------------------------------------------------- metadata service

using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

TEST(Metadata, PlainPlacementSingleTarget) {
  Cluster cluster;
  const auto& layout = cluster.metadata().create("a", 4096, FilePolicy{});
  EXPECT_EQ(layout.targets.size(), 1u);
  EXPECT_TRUE(layout.parity.empty());
  EXPECT_EQ(layout.size, 4096u);
}

TEST(Metadata, ReplicationTargetsAreDistinctNodes) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  FilePolicy p;
  p.resiliency = dfs::Resiliency::kReplication;
  p.repl_k = 4;
  const auto& layout = cluster.metadata().create("a", 4096, p);
  std::set<net::NodeId> nodes;
  for (const auto& c : layout.targets) nodes.insert(c.node);
  EXPECT_EQ(nodes.size(), 4u);  // distinct failure domains
}

TEST(Metadata, EcPlacementDisjointDataAndParity) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  Cluster cluster(cfg);
  FilePolicy p;
  p.resiliency = dfs::Resiliency::kErasureCoding;
  p.ec_k = 3;
  p.ec_m = 2;
  const auto& layout = cluster.metadata().create("a", 3000, p);
  EXPECT_EQ(layout.targets.size(), 3u);
  EXPECT_EQ(layout.parity.size(), 2u);
  EXPECT_EQ(layout.chunk_len, 1000u);
  std::set<net::NodeId> nodes;
  for (const auto& c : layout.targets) nodes.insert(c.node);
  for (const auto& c : layout.parity) nodes.insert(c.node);
  EXPECT_EQ(nodes.size(), 5u);
}

TEST(Metadata, RejectsInfeasiblePolicies) {
  Cluster cluster;  // 4 storage nodes
  FilePolicy repl;
  repl.resiliency = dfs::Resiliency::kReplication;
  repl.repl_k = 9;
  EXPECT_THROW(cluster.metadata().create("a", 100, repl), std::invalid_argument);
  FilePolicy ec;
  ec.resiliency = dfs::Resiliency::kErasureCoding;
  ec.ec_k = 4;
  ec.ec_m = 2;
  EXPECT_THROW(cluster.metadata().create("b", 100, ec), std::invalid_argument);
}

TEST(Metadata, DuplicateNameRejected) {
  Cluster cluster;
  cluster.metadata().create("a", 100, FilePolicy{});
  EXPECT_THROW(cluster.metadata().create("a", 100, FilePolicy{}), std::invalid_argument);
}

TEST(Metadata, LookupFindsCreated) {
  Cluster cluster;
  const auto& layout = cluster.metadata().create("x/y", 100, FilePolicy{});
  const auto* found = cluster.metadata().lookup("x/y");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->object_id, layout.object_id);
  EXPECT_EQ(cluster.metadata().lookup("nope"), nullptr);
}

TEST(Metadata, GrantCoversAllTargets) {
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  FilePolicy p;
  p.resiliency = dfs::Resiliency::kReplication;
  p.repl_k = 3;
  const auto& layout = cluster.metadata().create("a", 8192, p);
  const auto cap = cluster.metadata().grant(5, layout, auth::Right::kWrite);
  const auto& authority = cluster.management().authority();
  for (const auto& c : layout.targets) {
    EXPECT_TRUE(authority.verify(cap, 0, auth::Right::kWrite, c.addr, layout.size))
        << "target node " << c.node;
  }
}

TEST(Metadata, AllocationsDoNotOverlapOnANode) {
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  Cluster cluster(cfg);
  const auto& a = cluster.metadata().create("a", 5000, FilePolicy{});
  const auto& b = cluster.metadata().create("b", 5000, FilePolicy{});
  // Same node; extents disjoint.
  EXPECT_EQ(a.targets[0].node, b.targets[0].node);
  const auto lo = std::min(a.targets[0].addr, b.targets[0].addr);
  const auto hi = std::max(a.targets[0].addr, b.targets[0].addr);
  EXPECT_GE(hi - lo, 5000u);
}

// ------------------------------------------------------------ tracker

TEST(AckTracker, CountsAcksToCompletion) {
  services::AckTracker tracker;
  bool done = false;
  bool ok = false;
  tracker.expect(1, 3, [&](bool o, TimePs) {
    done = true;
    ok = o;
  });
  // Feed acks directly through the handler path: install on a throwaway rig.
  sim::Simulator sim;
  net::Network net(sim);
  storage::Target mem(sim);
  rdma::Nic nic(sim, net, mem);
  tracker.install(nic);

  net::Packet ack;
  ack.opcode = net::Opcode::kAck;
  ack.user_tag = 1;
  for (int i = 0; i < 2; ++i) {
    auto copy = ack;
    nic.on_packet(std::move(copy));
    EXPECT_FALSE(done);
  }
  auto last = ack;
  nic.on_packet(std::move(last));
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_FALSE(tracker.pending(1));
  EXPECT_EQ(tracker.late_acks(), 0u);
  EXPECT_EQ(tracker.stray_nacks(), 0u);
}

TEST(AckTracker, NackFailsImmediately) {
  services::AckTracker tracker;
  sim::Simulator sim;
  net::Network net(sim);
  storage::Target mem(sim);
  rdma::Nic nic(sim, net, mem);
  tracker.install(nic);

  bool done = false, ok = true;
  tracker.expect(2, 5, [&](bool o, TimePs) {
    done = true;
    ok = o;
  });
  net::Packet nack;
  nack.opcode = net::Opcode::kNack;
  nack.user_tag = 2;
  nic.on_packet(std::move(nack));
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(tracker.stray_nacks(), 0u);
}

TEST(AckTracker, UnknownTagIgnoredButCounted) {
  services::AckTracker tracker;
  sim::Simulator sim;
  net::Network net(sim);
  storage::Target mem(sim);
  rdma::Nic nic(sim, net, mem);
  tracker.install(nic);
  net::Packet ack;
  ack.opcode = net::Opcode::kAck;
  ack.user_tag = 99;
  EXPECT_NO_THROW(nic.on_packet(std::move(ack)));
  EXPECT_EQ(tracker.late_acks(), 1u);
  net::Packet nack;
  nack.opcode = net::Opcode::kNack;
  nack.user_tag = 98;
  EXPECT_NO_THROW(nic.on_packet(std::move(nack)));
  EXPECT_EQ(tracker.stray_nacks(), 1u);
}

TEST(AckTracker, CancelDropsOp) {
  services::AckTracker tracker;
  tracker.expect(3, 1, [](bool, TimePs) { FAIL() << "cancelled op completed"; });
  tracker.cancel(3);
  EXPECT_FALSE(tracker.pending(3));
}

TEST(AckTracker, ReExpectOfPendingTagIsHardError) {
  services::AckTracker tracker;
  bool first_fired = false;
  tracker.expect(7, 1, [&](bool, TimePs) { first_fired = true; });
  // Silent overwrite would orphan the first callback; it must throw instead.
  EXPECT_THROW(tracker.expect(7, 1, [](bool, TimePs) {}), std::logic_error);
  EXPECT_TRUE(tracker.pending(7));
  EXPECT_FALSE(first_fired);  // the original op is untouched
  // A *completed* tag is free for reuse.
  tracker.cancel(7);
  EXPECT_NO_THROW(tracker.expect(7, 1, [](bool, TimePs) {}));
}

TEST(AckTracker, ReplaceSupersedesPendingOp) {
  services::AckTracker tracker;
  sim::Simulator sim;
  net::Network net(sim);
  storage::Target mem(sim);
  rdma::Nic nic(sim, net, mem);
  tracker.install(nic);

  tracker.expect(8, 1, [](bool, TimePs) { FAIL() << "replaced op completed"; });
  bool done = false;
  tracker.replace(8, 1, [&](bool, TimePs) { done = true; });
  EXPECT_EQ(tracker.replaced_ops(), 1u);
  EXPECT_EQ(tracker.pending_count(), 1u);

  net::Packet ack;
  ack.opcode = net::Opcode::kAck;
  ack.user_tag = 8;
  nic.on_packet(std::move(ack));
  EXPECT_TRUE(done);

  // replace() on a free tag is just expect().
  tracker.replace(9, 1, [](bool, TimePs) {});
  EXPECT_EQ(tracker.replaced_ops(), 1u);
  EXPECT_TRUE(tracker.pending(9));
}

TEST(AckTracker, TakeHandsBackTheCallback) {
  services::AckTracker tracker;
  bool fired = false;
  tracker.expect(4, 2, [&](bool ok, TimePs) { fired = !ok; });
  auto cb = tracker.take(4);
  ASSERT_TRUE(cb.has_value());
  EXPECT_FALSE(tracker.pending(4));
  // take() hands back the typed callback; the DoneCb the test registered
  // sees kTimeout collapsed to ok == false.
  (*cb)(dfs::DfsError::kTimeout, 0);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(tracker.take(4).has_value());
}

TEST(AckTracker, NackDeliversTypedWireError) {
  services::AckTracker tracker;
  sim::Simulator sim;
  net::Network net(sim);
  storage::Target mem(sim);
  rdma::Nic nic(sim, net, mem);
  tracker.install(nic);

  // The typed error rides the NACK's raddr field.
  dfs::DfsError seen = dfs::DfsError::kOk;
  tracker.expect(11, 1, services::OpCb([&](dfs::DfsError err, TimePs) { seen = err; }));
  net::Packet nack;
  nack.opcode = net::Opcode::kNack;
  nack.user_tag = 11;
  nack.raddr = static_cast<std::uint64_t>(dfs::DfsError::kNotFound);
  nic.on_packet(std::move(nack));
  EXPECT_EQ(seen, dfs::DfsError::kNotFound);

  // A legacy NACK (raddr == 0, pre-typed peer) maps to the old blanket
  // meaning, kDenied.
  tracker.expect(12, 1, services::OpCb([&](dfs::DfsError err, TimePs) { seen = err; }));
  net::Packet legacy;
  legacy.opcode = net::Opcode::kNack;
  legacy.user_tag = 12;
  nic.on_packet(std::move(legacy));
  EXPECT_EQ(seen, dfs::DfsError::kDenied);

  // Out-of-range codes (corrupt or future peer) degrade to kDenied rather
  // than forging an enum value.
  tracker.expect(13, 1, services::OpCb([&](dfs::DfsError err, TimePs) { seen = err; }));
  net::Packet weird;
  weird.opcode = net::Opcode::kNack;
  weird.user_tag = 13;
  weird.raddr = 0xFFu;
  nic.on_packet(std::move(weird));
  EXPECT_EQ(seen, dfs::DfsError::kDenied);
}

TEST(Client, GreqIdsGloballyUnique) {
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  services::Client c0(cluster, 0), c1(cluster, 1);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(c0.next_greq());
    ids.insert(c1.next_greq());
  }
  EXPECT_EQ(ids.size(), 200u);
}

TEST(Client, GreqSequenceWrapsWithoutBleedingIntoClientId) {
  // Regression: the sequence counter is 64-bit, so after 2^32 requests the
  // unmasked `(id << 32) | seq` bled into the client-id bits — client 1's
  // greq collided with client 2's greq 0. The sequence must wrap back to 1
  // (skipping 0) with the id bits intact.
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  services::Client c0(cluster, 0), c1(cluster, 1);

  c0.debug_set_next_seq(0xFFFFFFFFull);
  const auto last = c0.next_greq();
  EXPECT_EQ(last >> 32, c0.client_id());
  EXPECT_EQ(last & 0xFFFFFFFFull, 0xFFFFFFFFull);

  const auto wrapped = c0.next_greq();  // sequence would be 2^32
  EXPECT_EQ(wrapped >> 32, c0.client_id());  // high bits untouched
  EXPECT_EQ(wrapped & 0xFFFFFFFFull, 1u);    // explicit wrap, 0 skipped
  // The old unmasked increment produced (c0_id + 1) << 32 here — a greq
  // belonging to client-id space c0_id + 1.
  EXPECT_NE(wrapped >> 32, c0.client_id() + 1);
  // And even past the boundary, ids from the two clients stay disjoint.
  std::set<std::uint64_t> ids;
  c1.debug_set_next_seq(1);
  for (int i = 0; i < 16; ++i) {
    ids.insert(c0.next_greq());
    ids.insert(c1.next_greq());
  }
  EXPECT_EQ(ids.size(), 32u);
}

TEST(Client, AcksForMatchesPolicy) {
  services::FileLayout plain;
  EXPECT_EQ(services::Client::acks_for(plain), 1u);
  services::FileLayout repl;
  repl.policy.resiliency = dfs::Resiliency::kReplication;
  repl.policy.repl_k = 4;
  EXPECT_EQ(services::Client::acks_for(repl), 4u);
  services::FileLayout ec;
  ec.policy.resiliency = dfs::Resiliency::kErasureCoding;
  ec.policy.ec_k = 6;
  ec.policy.ec_m = 3;
  EXPECT_EQ(services::Client::acks_for(ec), 9u);
}

TEST(Interleave, RoundRobinAcrossTrains) {
  std::vector<std::vector<net::Packet>> trains(3);
  for (unsigned t = 0; t < 3; ++t) {
    for (unsigned i = 0; i < (t == 2 ? 1u : 2u); ++i) {
      net::Packet p;
      p.msg_id = t;
      p.seq = i;
      trains[t].push_back(std::move(p));
    }
  }
  const auto out = services::interleave(std::move(trains));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].msg_id, 0u);
  EXPECT_EQ(out[1].msg_id, 1u);
  EXPECT_EQ(out[2].msg_id, 2u);
  EXPECT_EQ(out[3].msg_id, 0u);
  EXPECT_EQ(out[4].msg_id, 1u);
}

}  // namespace
}  // namespace nadfs
