// End-to-end tests of the offloaded (sPIN) data path: client endpoint ->
// network -> storage NIC -> PsPIN handlers -> storage target -> DFS acks.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dfs/handlers.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

struct WriteResult {
  bool done = false;
  bool ok = false;
  TimePs at = 0;
};

services::DoneCb capture(WriteResult& r) {
  return [&r](bool ok, TimePs at) {
    r.done = true;
    r.ok = ok;
    r.at = at;
  };
}

TEST(SpinPath, PlainWriteLandsAndAcks) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(10000, 1);
  WriteResult r;
  client.write(layout, cap, data, capture(r));
  cluster.sim().run();

  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.at, 0u);
  auto& node = cluster.storage_by_node(layout.targets[0].node);
  EXPECT_EQ(node.target().read(layout.targets[0].addr, data.size()), data);
  EXPECT_EQ(node.dfs_state()->acks_sent, 1u);
  EXPECT_EQ(node.dfs_state()->table.in_use(), 0u);  // slot released at CH
}

TEST(SpinPath, SmallWriteSinglePacketTriggersAllHandlers) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 4 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  WriteResult r;
  client.write(layout, cap, random_bytes(512, 2), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.ok);

  const auto& stats = cluster.storage_by_node(layout.targets[0].node).pspin().stats();
  EXPECT_EQ(stats.duration_ns(spin::HandlerType::kHeader).count(), 1u);
  EXPECT_EQ(stats.duration_ns(spin::HandlerType::kPayload).count(), 1u);
  EXPECT_EQ(stats.duration_ns(spin::HandlerType::kCompletion).count(), 1u);
}

TEST(SpinPath, HandlerCostsMatchPaperCalibration) {
  // Unloaded single write: HH ~211 ns + dispatch, PH ~92, CH ~107 (Table I
  // k=1 row), with the calibrated instruction counts.
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  WriteResult r;
  client.write(layout, cap, random_bytes(40 * KiB, 3), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.ok);

  const auto& stats = cluster.storage_by_node(layout.targets[0].node).pspin().stats();
  EXPECT_NEAR(stats.duration_ns(spin::HandlerType::kHeader).mean(), 212.0, 2.0);
  EXPECT_NEAR(stats.instructions(spin::HandlerType::kHeader).mean(), 120.0, 0.1);
  EXPECT_NEAR(stats.instructions(spin::HandlerType::kPayload).mean(), 55.0, 0.1);
  EXPECT_NEAR(stats.duration_ns(spin::HandlerType::kPayload).mean(), 93.0, 2.0);
  EXPECT_NEAR(stats.instructions(spin::HandlerType::kCompletion).mean(), 66.0, 0.1);
  // IPC in the paper's 0.55-0.65 band.
  EXPECT_NEAR(stats.ipc(spin::HandlerType::kHeader), 0.57, 0.03);
}

TEST(SpinPath, BadCapabilityNacksAndDropsData) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 16 * KiB, FilePolicy{});
  auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  cap.mac ^= 1;  // forge

  WriteResult r;
  client.write(layout, cap, random_bytes(8 * KiB, 4), capture(r));
  cluster.sim().run();

  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.ok);
  auto& node = cluster.storage_by_node(layout.targets[0].node);
  EXPECT_EQ(node.target().bytes_written(), 0u);
  EXPECT_EQ(node.dfs_state()->auth_failures, 1u);
  EXPECT_EQ(node.dfs_state()->nacks_sent, 1u);
  // Host was notified on its event queue (paper §III-C).
  ASSERT_FALSE(node.host_events().empty());
  EXPECT_EQ(node.host_events()[0].code, dfs::kEvAuthFailure);
}

TEST(SpinPath, ReadOnlyCapabilityCannotWrite) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 16 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);

  WriteResult r;
  client.write(layout, cap, random_bytes(1 * KiB, 5), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.ok);
}

TEST(SpinPath, ExpiredCapabilityRejected) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 16 * KiB, FilePolicy{});
  const auto cap =
      cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite, ns(1));

  // By the time the request reaches the NIC, the capability is expired.
  WriteResult r;
  client.write(layout, cap, random_bytes(1 * KiB, 6), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.ok);
}

TEST(SpinPath, ReplicationRingLandsOnAllReplicas) {
  Cluster cluster;
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kRing;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(20000, 7);
  WriteResult r;
  client.write(layout, cap, data, capture(r));
  cluster.sim().run();

  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data)
        << "replica at node " << coord.node;
  }
}

TEST(SpinPath, ReplicationPbtLandsOnAllReplicas) {
  ClusterConfig cfg;
  cfg.storage_nodes = 6;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kPbt;
  policy.repl_k = 6;
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(33000, 8);
  WriteResult r;
  client.write(layout, cap, data, capture(r));
  cluster.sim().run();

  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data);
  }
}

TEST(SpinPath, ReplicationDeniedForwardsNothing) {
  Cluster cluster;
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("obj", 16 * KiB, policy);
  auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  cap.extent_len = 1;  // break the extent so validation fails

  WriteResult r;
  client.write(layout, cap, random_bytes(8 * KiB, 9), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().bytes_written(), 0u);
  }
}

TEST(SpinPath, ErasureCodingWritesDataAndCorrectParity) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const auto& layout = cluster.metadata().create("obj", 30000, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  Bytes data = random_bytes(30000, 10);
  WriteResult r;
  client.write(layout, cap, data, capture(r));
  cluster.sim().run();

  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);

  const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
  Bytes padded = data;
  padded.resize(chunk_len * 3, 0);

  // Data chunks stored verbatim (systematic code).
  std::vector<Bytes> chunks(3);
  for (unsigned i = 0; i < 3; ++i) {
    chunks[i].assign(padded.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                     padded.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
    EXPECT_EQ(cluster.storage_by_node(layout.targets[i].node)
                  .target()
                  .read(layout.targets[i].addr, chunk_len),
              chunks[i]);
  }
  // Parity chunks match a host-side reference encode.
  ec::ReedSolomon rs(3, 2);
  const auto parity = rs.encode(chunks);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.storage_by_node(layout.parity[i].node)
                  .target()
                  .read(layout.parity[i].addr, chunk_len),
              parity[i])
        << "parity " << i;
  }
}

TEST(SpinPath, ErasureCodedDataRecoverableAfterNodeLoss) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const auto& layout = cluster.metadata().create("obj", 24000, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  Bytes data = random_bytes(24000, 11);
  WriteResult r;
  client.write(layout, cap, data, capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.ok);

  // "Fail" data nodes 0 and 1: rebuild from chunk 2 + both parities.
  const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
  std::vector<std::pair<unsigned, Bytes>> present;
  present.emplace_back(2, cluster.storage_by_node(layout.targets[2].node)
                              .target()
                              .read(layout.targets[2].addr, chunk_len));
  for (unsigned i = 0; i < 2; ++i) {
    present.emplace_back(3 + i, cluster.storage_by_node(layout.parity[i].node)
                                    .target()
                                    .read(layout.parity[i].addr, chunk_len));
  }
  ec::ReedSolomon rs(3, 2);
  auto recovered = rs.decode(present);
  ASSERT_TRUE(recovered.has_value());
  Bytes flat;
  for (const auto& c : *recovered) flat.insert(flat.end(), c.begin(), c.end());
  flat.resize(data.size());
  EXPECT_EQ(flat, data);
}

TEST(SpinPath, ReadRoundTrip) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, FilePolicy{});
  const auto wcap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  const auto rcap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kRead);

  const Bytes data = random_bytes(12345, 12);
  WriteResult wr;
  client.write(layout, wcap, data, capture(wr));
  cluster.sim().run();
  ASSERT_TRUE(wr.ok);

  Bytes got;
  TimePs read_at = 0;
  client.read(layout, rcap, static_cast<std::uint32_t>(data.size()),
              [&](Bytes d, TimePs at) {
                got = std::move(d);
                read_at = at;
              });
  cluster.sim().run();
  EXPECT_EQ(got, data);
  EXPECT_GT(read_at, wr.at);
}

TEST(SpinPath, RequestTableExhaustionNacks) {
  ClusterConfig cfg;
  cfg.dfs.req_table_bytes = dfs::kReqDescriptorBytes;  // exactly one slot
  cfg.storage_nodes = 1;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0), c1(cluster, 1);
  FilePolicy policy;
  const auto& la = cluster.metadata().create("a", 1 * MiB, policy);
  const auto& lb = cluster.metadata().create("b", 1 * MiB, policy);
  const auto capa = cluster.metadata().grant(c0.client_id(), la, auth::Right::kWrite);
  const auto capb = cluster.metadata().grant(c1.client_id(), lb, auth::Right::kWrite);

  // Two concurrent large writes to the same node: the later HH finds the
  // table full and denies the request (client retries later, §III-B.2).
  WriteResult r1, r2;
  c0.write(la, capa, random_bytes(512 * KiB, 13), capture(r1));
  c1.write(lb, capb, random_bytes(512 * KiB, 14), capture(r2));
  cluster.sim().run();

  ASSERT_TRUE(r1.done);
  ASSERT_TRUE(r2.done);
  EXPECT_NE(r1.ok, r2.ok);  // exactly one of the two got the slot
  EXPECT_EQ(cluster.storage_node(0).dfs_state()->table_denials, 1u);
}

TEST(SpinPath, CleanupHandlerReapsAbandonedWrite) {
  ClusterConfig cfg;
  cfg.pspin.cleanup_timeout = us(10);
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  // Simulate a client dying mid-write: inject only the first 2 packets of a
  // 10-packet message.
  dfs::DfsHeader hdr;
  hdr.op = dfs::OpType::kWrite;
  hdr.greq_id = client.next_greq();
  hdr.client_node = client.node().id();
  hdr.cap = cap;
  dfs::WriteRequestHeader wrh;
  wrh.dest_addr = layout.targets[0].addr;
  wrh.total_len = 18000;
  auto pkts = dfs::build_write_packets(client.node().id(), layout.targets[0].node,
                                       cluster.network().mtu(), hdr, wrh,
                                       random_bytes(18000, 15));
  ASSERT_GT(pkts.size(), 2u);
  pkts.resize(2);
  client.node().nic().post_message(std::move(pkts));
  cluster.sim().run();

  auto& node = cluster.storage_by_node(layout.targets[0].node);
  EXPECT_EQ(node.pspin().cleanup_runs(), 1u);
  EXPECT_EQ(node.dfs_state()->cleanups, 1u);
  EXPECT_EQ(node.dfs_state()->table.in_use(), 0u);  // dangling slot reclaimed
  EXPECT_EQ(node.pspin().live_messages(), 0u);
  // Host software saw the cleanup event.
  bool saw = false;
  for (const auto& ev : node.host_events()) {
    if (ev.code == dfs::kEvCleanup) saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(SpinPath, CompletedWriteIsNotReaped) {
  ClusterConfig cfg;
  cfg.pspin.cleanup_timeout = us(10);
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("obj", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  WriteResult r;
  client.write(layout, cap, random_bytes(18000, 16), capture(r));
  cluster.sim().run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node).pspin().cleanup_runs(), 0u);
}

TEST(SpinPath, ConcurrentWritesFromTwoClients) {
  ClusterConfig cfg;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0), c1(cluster, 1);
  const auto& l0 = cluster.metadata().create("a", 64 * KiB, FilePolicy{});
  const auto& l1 = cluster.metadata().create("b", 64 * KiB, FilePolicy{});
  const auto cap0 = cluster.metadata().grant(c0.client_id(), l0, auth::Right::kWrite);
  const auto cap1 = cluster.metadata().grant(c1.client_id(), l1, auth::Right::kWrite);

  const Bytes d0 = random_bytes(30000, 17);
  const Bytes d1 = random_bytes(30000, 18);
  WriteResult r0, r1;
  c0.write(l0, cap0, d0, capture(r0));
  c1.write(l1, cap1, d1, capture(r1));
  cluster.sim().run();

  ASSERT_TRUE(r0.ok);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(cluster.storage_by_node(l0.targets[0].node).target().read(l0.targets[0].addr, d0.size()),
            d0);
  EXPECT_EQ(cluster.storage_by_node(l1.targets[0].node).target().read(l1.targets[0].addr, d1.size()),
            d1);
}

TEST(SpinPath, UninstalledPspinFallsBackToHostPath) {
  ClusterConfig cfg;
  cfg.install_dfs = false;
  Cluster cluster(cfg);
  auto& node = cluster.storage_node(0);
  // Raw RDMA write straight to the storage target (speed-of-light baseline).
  ClusterConfig ccfg;
  services::Client client(cluster, 0);
  (void)ccfg;
  const auto rkey = node.nic().register_mr(0, 1 * MiB);
  const Bytes data(4096, 0x42);
  bool done = false;
  client.node().nic().post_write(node.id(), 0x100, rkey, data, [&](TimePs) { done = true; });
  cluster.sim().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(node.target().read(0x100, data.size()), data);
}

}  // namespace
}  // namespace nadfs
