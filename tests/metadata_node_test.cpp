// Tests of the networked control plane: open() RPCs against the metadata
// node, layout wire codec, and the full Fig. 1a workflow (query metadata,
// then one-sided data access with the returned capability).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "services/client.hpp"
#include "services/metadata_node.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FileLayout;
using services::FilePolicy;
using services::MetadataClient;
using services::MetadataNode;

TEST(LayoutCodec, RoundTripsAllPolicyClasses) {
  for (int kind = 0; kind < 3; ++kind) {
    FileLayout layout;
    layout.object_id = 42;
    layout.size = 123456;
    layout.targets = {{1, 0x1000}, {2, 0x2000}};
    switch (kind) {
      case 0:
        layout.policy.stripe_count = 2;
        layout.policy.stripe_size = 4096;
        break;
      case 1:
        layout.policy.resiliency = dfs::Resiliency::kReplication;
        layout.policy.strategy = dfs::ReplStrategy::kPbt;
        layout.policy.repl_k = 2;
        break;
      case 2:
        layout.policy.resiliency = dfs::Resiliency::kErasureCoding;
        layout.policy.ec_k = 2;
        layout.policy.ec_m = 1;
        layout.parity = {{3, 0x3000}};
        layout.chunk_len = 61728;
        break;
    }
    Bytes buf;
    ByteWriter w(buf);
    layout.serialize(w);
    ByteReader r(buf);
    const auto got = FileLayout::deserialize(r);
    EXPECT_EQ(got.object_id, layout.object_id);
    EXPECT_EQ(got.size, layout.size);
    EXPECT_EQ(got.targets, layout.targets);
    EXPECT_EQ(got.parity, layout.parity);
    EXPECT_EQ(got.chunk_len, layout.chunk_len);
    EXPECT_EQ(got.policy.resiliency, layout.policy.resiliency);
    EXPECT_EQ(got.policy.stripe_count, layout.policy.stripe_count);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(MetadataNodeRpc, OpenReturnsLayoutAndValidCapability) {
  Cluster cluster;
  MetadataNode meta(cluster);
  Client client(cluster, 0);
  MetadataClient stub(client, meta);
  cluster.metadata().create("/a/b", 64 * KiB, FilePolicy{});

  std::optional<MetadataClient::OpenResult> result;
  TimePs at = 0;
  stub.open("/a/b", auth::Right::kReadWrite, [&](auto r, TimePs t) {
    result = std::move(r);
    at = t;
  });
  cluster.sim().run();

  ASSERT_TRUE(result.has_value());
  EXPECT_GT(at, ns(1000));  // a real network + CPU round trip was paid
  EXPECT_EQ(result->layout.size, 64 * KiB);
  // The minted capability verifies under the DFS-shared key.
  EXPECT_TRUE(cluster.management().authority().verify(
      result->cap, at, auth::Right::kWrite, result->layout.targets[0].addr,
      result->layout.size));
  EXPECT_EQ(meta.lookups_served(), 1u);
}

TEST(MetadataNodeRpc, UnknownNameReturnsNotFound) {
  Cluster cluster;
  MetadataNode meta(cluster);
  Client client(cluster, 0);
  MetadataClient stub(client, meta);

  bool called = false;
  std::optional<MetadataClient::OpenResult> result;
  stub.open("/nope", auth::Right::kRead, [&](auto r, TimePs) {
    called = true;
    result = std::move(r);
  });
  cluster.sim().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
}

TEST(MetadataNodeRpc, FullWorkflowOpenThenWriteThenRead) {
  // Fig. 1a end to end: (1)(2) open over the wire, (3) one-sided data
  // access with the returned layout + capability.
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  MetadataNode meta(cluster);
  Client client(cluster, 0);
  MetadataClient stub(client, meta);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.repl_k = 3;
  cluster.metadata().create("/data", 64 * KiB, policy);

  Rng rng(1);
  Bytes data(20000);
  for (auto& b : data) b = rng.next_byte();

  bool wrote = false;
  Bytes got;
  stub.open("/data", auth::Right::kReadWrite, [&](auto r, TimePs) {
    ASSERT_TRUE(r.has_value());
    const auto layout = r->layout;
    const auto cap = r->cap;
    client.write(layout, cap, data, [&, layout, cap](bool ok, TimePs) {
      wrote = ok;
      client.read(layout, cap, static_cast<std::uint32_t>(data.size()),
                  [&](Bytes d, TimePs) { got = std::move(d); });
    });
  });
  cluster.sim().run();

  EXPECT_TRUE(wrote);
  EXPECT_EQ(got, data);
}

TEST(MetadataNodeRpc, ConcurrentOpensAreIndependent) {
  Cluster cluster;
  MetadataNode meta(cluster);
  Client client(cluster, 0);
  MetadataClient stub(client, meta);
  cluster.metadata().create("a", 1000, FilePolicy{});
  cluster.metadata().create("b", 2000, FilePolicy{});

  std::uint64_t size_a = 0, size_b = 0;
  stub.open("a", auth::Right::kRead, [&](auto r, TimePs) { size_a = r->layout.size; });
  stub.open("b", auth::Right::kRead, [&](auto r, TimePs) { size_b = r->layout.size; });
  cluster.sim().run();
  EXPECT_EQ(size_a, 1000u);
  EXPECT_EQ(size_b, 2000u);
  EXPECT_EQ(meta.lookups_served(), 2u);
}

}  // namespace
}  // namespace nadfs
