#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace nadfs::net {
namespace {

struct Collector : PacketSink {
  std::vector<std::pair<TimePs, Packet>> got;
  sim::Simulator* sim = nullptr;
  void on_packet(Packet&& pkt) override { got.emplace_back(sim->now(), std::move(pkt)); }
};

struct Rig {
  sim::Simulator sim;
  Network net;
  Collector a, b, c;
  NodeId na, nb, nc;

  explicit Rig(NetworkConfig cfg = {}) : net(sim, cfg) {
    a.sim = &sim;
    b.sim = &sim;
    c.sim = &sim;
    na = net.add_node(a);
    nb = net.add_node(b);
    nc = net.add_node(c);
  }

  Packet make(NodeId src, NodeId dst, std::size_t payload) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.opcode = Opcode::kRdmaWrite;
    p.msg_id = 1;
    p.data.assign(payload, 0x5A);
    return p;
  }
};

TEST(Network, SinglePacketLatency) {
  Rig rig;
  auto p = rig.make(rig.na, rig.nb, 1000);
  const std::size_t wire = p.wire_size();
  rig.net.inject(std::move(p));
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), 1u);
  // store-and-forward: 2x serialization + 2x link latency + switch latency
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(wire);
  const TimePs expect = 2 * ser + 2 * rig.net.config().link_latency + rig.net.config().switch_latency;
  EXPECT_EQ(rig.b.got[0].first, expect);
}

TEST(Network, UplinkSerializesSuccessivePackets) {
  Rig rig;
  rig.net.inject(rig.make(rig.na, rig.nb, 2048));
  rig.net.inject(rig.make(rig.na, rig.nb, 2048));
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), 2u);
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(2048 + kTransportHeaderBytes);
  EXPECT_EQ(rig.b.got[1].first - rig.b.got[0].first, ser);
}

TEST(Network, IncastContendsOnDownlink) {
  Rig rig;
  // a and c both send to b at the same instant: b's downlink serializes them.
  rig.net.inject(rig.make(rig.na, rig.nb, 2048));
  rig.net.inject(rig.make(rig.nc, rig.nb, 2048));
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), 2u);
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(2048 + kTransportHeaderBytes);
  EXPECT_EQ(rig.b.got[1].first - rig.b.got[0].first, ser);
}

TEST(Network, DistinctDestinationsDoNotContend) {
  Rig rig;
  rig.net.inject(rig.make(rig.na, rig.nb, 2048));
  rig.net.inject(rig.make(rig.nc, rig.na, 2048));
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), 1u);
  ASSERT_EQ(rig.a.got.size(), 1u);
  EXPECT_EQ(rig.b.got[0].first, rig.a.got[0].first);
}

TEST(Network, FifoDeliveryPerPath) {
  Rig rig;
  for (std::uint32_t i = 0; i < 16; ++i) {
    auto p = rig.make(rig.na, rig.nb, 512);
    p.seq = i;
    p.pkt_count = 16;
    rig.net.inject(std::move(p));
  }
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(rig.b.got[i].second.seq, i);
  }
}

TEST(Network, RejectsOversizedPayload) {
  Rig rig;
  EXPECT_THROW(rig.net.inject(rig.make(rig.na, rig.nb, rig.net.mtu() + 1)), std::length_error);
}

TEST(Network, RejectsUnknownNode) {
  Rig rig;
  auto p = rig.make(rig.na, 99, 100);
  EXPECT_THROW(rig.net.inject(std::move(p)), std::out_of_range);
}

TEST(Network, DeliveredPayloadAccounting) {
  Rig rig;
  rig.net.inject(rig.make(rig.na, rig.nb, 1000));
  rig.net.inject(rig.make(rig.nc, rig.nb, 500));
  rig.sim.run();
  EXPECT_EQ(rig.net.delivered_payload_bytes(rig.nb), 1500u);
  EXPECT_EQ(rig.net.delivered_payload_bytes(rig.na), 0u);
}

TEST(Network, EarliestDelaysInjection) {
  Rig rig;
  auto p = rig.make(rig.na, rig.nb, 100);
  const auto w = rig.net.inject(std::move(p), ns(500));
  EXPECT_EQ(w.start, ns(500));
}

TEST(Network, PaperLineRateIsSustained) {
  // 256 MTU packets back to back: delivery rate equals the serialization
  // rate of the bottleneck link (400 Gbit/s).
  Rig rig;
  const std::size_t n = 256;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto p = rig.make(rig.na, rig.nb, 2048);
    p.seq = i;
    p.pkt_count = n;
    rig.net.inject(std::move(p));
  }
  rig.sim.run();
  ASSERT_EQ(rig.b.got.size(), n);
  const TimePs span = rig.b.got.back().first - rig.b.got.front().first;
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(2048 + kTransportHeaderBytes);
  EXPECT_EQ(span, (n - 1) * ser);
}

TEST(Network, WireSizeIncludesTransportHeader) {
  Packet p;
  p.data.assign(100, 0);
  EXPECT_EQ(p.wire_size(), 100 + kTransportHeaderBytes);
}

TEST(Network, FirstLastFlags) {
  Packet p;
  p.seq = 0;
  p.pkt_count = 1;
  EXPECT_TRUE(p.first());
  EXPECT_TRUE(p.last());
  p.pkt_count = 3;
  EXPECT_TRUE(p.first());
  EXPECT_FALSE(p.last());
  p.seq = 2;
  EXPECT_TRUE(p.last());
}

TEST(Network, OpcodeNames) {
  EXPECT_STREQ(opcode_name(Opcode::kRdmaWrite), "RDMA_WRITE");
  EXPECT_STREQ(opcode_name(Opcode::kAck), "ACK");
  EXPECT_STREQ(opcode_name(Opcode::kTransportAck), "T_ACK");
}

}  // namespace
}  // namespace nadfs::net
