// Tests of the observability subsystem (src/obs): metric instruments and
// registry round-trips, the strict JSON reader, the sim-time sampler, the
// cross-layer span tracer, and — the property everything else leans on —
// digest-neutrality: attaching the tracer and reading the registry must
// not change what a run computes.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

// ----------------------------------------------------------- instruments

TEST(ObsCounter, BehavesLikeTheRawInteger) {
  obs::Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 4;
  c.inc();
  EXPECT_EQ(c, 6u);
  EXPECT_EQ(c.value(), 6u);
  const std::uint64_t as_int = c;  // implicit read, like the uint64 it replaced
  EXPECT_EQ(as_int, 6u);
  EXPECT_EQ(*c.cell(), 6u);
}

TEST(ObsHist, BucketsByLog2Nanoseconds) {
  obs::SimTimeHist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ps(), 0u);
  if constexpr (!obs::kObsEnabled) {
    // NADFS_OBS=OFF: record() compiles to a no-op by design.
    h.record(ns(1));
    EXPECT_EQ(h.count(), 0u);
    GTEST_SKIP() << "histograms compiled out (NADFS_OBS=OFF)";
  }
  h.record(ns(1));
  h.record(ns(3));
  h.record(us(1));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ps(), ns(4) + us(1));
  EXPECT_EQ(h.min_ps(), ns(1));
  EXPECT_EQ(h.max_ps(), us(1));
  EXPECT_EQ(h.bucket(obs::SimTimeHist::bucket_of(ns(1))), 1u);
  EXPECT_EQ(h.bucket(obs::SimTimeHist::bucket_of(ns(3))), 1u);  // floor(log2(3)) == 1
  EXPECT_EQ(h.bucket(obs::SimTimeHist::bucket_of(us(1))), 1u);
  // Sub-ns and huge durations clamp instead of indexing out of range.
  EXPECT_EQ(obs::SimTimeHist::bucket_of(1), 0u);
  EXPECT_EQ(obs::SimTimeHist::bucket_of(~0ull), obs::SimTimeHist::kBuckets - 1);
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, SnapshotAndJsonRoundTrip) {
  obs::MetricRegistry reg;
  obs::Counter acks;
  std::uint64_t raw_cell = 0;
  obs::SimTimeHist lat;
  int depth = 0;
  reg.counter("node1.dfs.acks", acks);
  reg.counter_cell("node1.nic.raw", &raw_cell);
  reg.gauge("node1.queue_depth", [&depth] { return static_cast<long long>(depth); });
  reg.histogram("client0.latency", lat);

  acks += 3;
  raw_cell = 7;
  depth = 42;
  lat.record(us(2));

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("node1.dfs.acks"), 3);
  EXPECT_EQ(snap.at("node1.nic.raw"), 7);
  EXPECT_EQ(snap.at("node1.queue_depth"), 42);
  if constexpr (obs::kObsEnabled) {
    EXPECT_EQ(snap.at("client0.latency.count"), 1);
    EXPECT_EQ(snap.at("client0.latency.sum_ps"), static_cast<long long>(us(2)));
  } else {
    EXPECT_EQ(snap.at("client0.latency.count"), 0);  // record() compiled out
  }

  // The JSON export parses back to exactly the snapshot.
  std::string err;
  const auto parsed = obs::parse_flat_object(reg.to_json(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, snap);
}

TEST(ObsRegistry, RemovePrefixDropsOnlyThatSubtree) {
  obs::MetricRegistry reg;
  obs::Counter a, b;
  reg.counter("client1.retries", a);
  reg.counter("client10.retries", b);  // shares the string prefix "client1"
  reg.counter("net.drops", b);
  reg.remove_prefix("client1.");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.count("client1.retries"), 0u);
  EXPECT_EQ(snap.count("client10.retries"), 1u);
  EXPECT_EQ(snap.count("net.drops"), 1u);
}

TEST(ObsRegistry, ClientBindsAndUnbindsItself) {
  Cluster cluster;
  const auto before = cluster.metrics().size();
  {
    Client client(cluster, 0);
    const auto snap = cluster.metrics().snapshot();
    const std::string prefix = "client" + std::to_string(client.client_id());
    EXPECT_EQ(snap.count(prefix + ".retries_performed"), 1u);
    EXPECT_EQ(snap.count(prefix + ".pending_ops"), 1u);
    EXPECT_EQ(snap.count(prefix + ".write_latency.count"), 1u);
  }
  // Destroyed client removed its subtree; nothing dangles.
  EXPECT_EQ(cluster.metrics().size(), before);
}

// ----------------------------------------------------------- JSON reader

TEST(ObsJson, AcceptsValidDocuments) {
  EXPECT_TRUE(obs::json_valid("{}"));
  EXPECT_TRUE(obs::json_valid("[1, 2.5, -3e2, \"a\\u00e9b\", true, null, {\"k\":[]}]"));
  const auto doc = obs::json_parse("{\"a\": {\"b\": [1, 2]}, \"c\": \"x\"}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("a"), nullptr);
  EXPECT_EQ(doc->find("a")->find("b")->arr.size(), 2u);
  EXPECT_EQ(doc->find("c")->str, "x");
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(ObsJson, RejectsInvalidDocuments) {
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{} trailing"));
  EXPECT_FALSE(obs::json_valid("{'single': 1}"));
  EXPECT_FALSE(obs::json_valid("[1,]"));
  EXPECT_FALSE(obs::json_valid("01"));
  EXPECT_FALSE(obs::json_valid("\"bad \\x escape\""));
  std::string err;
  EXPECT_FALSE(obs::json_valid("[1, }", &err));
  EXPECT_FALSE(err.empty());
}

TEST(ObsJson, FlatObjectRejectsNonIntegers) {
  EXPECT_TRUE(obs::parse_flat_object("{\"a\": 1, \"b\": -2}").has_value());
  EXPECT_FALSE(obs::parse_flat_object("{\"a\": 1.5}").has_value());
  EXPECT_FALSE(obs::parse_flat_object("{\"a\": \"x\"}").has_value());
  EXPECT_FALSE(obs::parse_flat_object("[1]").has_value());
}

// --------------------------------------------------------------- sampler

TEST(ObsSampler, SamplesOnCadenceAndExports) {
  sim::Simulator sim;
  obs::Sampler sampler(sim);
  int depth = 0;
  sampler.add_probe("depth", [&depth] { return static_cast<double>(depth); });
  sampler.start(us(10));
  sim.schedule(us(25), [&depth] { depth = 5; });
  sim.run_until(us(45));
  sampler.stop();
  sim.run();

  ASSERT_EQ(sampler.rows().size(), 4u);  // t = 10, 20, 30, 40 us
  EXPECT_EQ(sampler.rows()[0].t_ps, us(10));
  EXPECT_EQ(sampler.rows()[1].v[0], 0.0);
  EXPECT_EQ(sampler.rows()[2].v[0], 5.0);

  std::ostringstream csv;
  sampler.export_csv(csv);
  EXPECT_EQ(csv.str().substr(0, 11), "t_ns,depth\n");

  std::ostringstream json;
  sampler.export_json(json);
  std::string err;
  const auto doc = obs::json_parse(json.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("series")->arr.size(), 2u);
  EXPECT_EQ(doc->find("rows")->arr.size(), 4u);
}

// ---------------------------------------------------- digest-neutrality

/// Everything observable about a seeded replicated+EC workload, including
/// the executed-event count (the strictest neutrality witness).
std::uint64_t run_workload_digest(bool traced) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  cfg.clients = 2;
  Cluster cluster(cfg);
  obs::SpanTracer tracer;
  if (traced) cluster.set_tracer(&tracer);

  Client c0(cluster, 0);
  Client c1(cluster, 1);
  FilePolicy repl;
  repl.resiliency = dfs::Resiliency::kReplication;
  repl.repl_k = 3;
  FilePolicy ec;
  ec.resiliency = dfs::Resiliency::kErasureCoding;
  ec.ec_k = 3;
  ec.ec_m = 2;

  const auto& l0 = cluster.metadata().create("r", 20000, repl);
  const auto& l1 = cluster.metadata().create("e", 30000, ec);
  const auto cap0 = cluster.metadata().grant(c0.client_id(), l0, auth::Right::kWrite);
  const auto cap1 = cluster.metadata().grant(c1.client_id(), l1, auth::Right::kWrite);

  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 1099511628211ull;
    }
  };
  c0.write(l0, cap0, random_bytes(20000, 7), [&](bool ok, TimePs at) {
    mix(ok);
    mix(at);
  });
  c1.write(l1, cap1, random_bytes(30000, 9), [&](bool ok, TimePs at) {
    mix(ok);
    mix(at);
  });
  cluster.sim().run();

  if (traced) {
    // Reading the registry mid-flight is the documented usage; fold a
    // snapshot read in so the test covers it, but never into the digest.
    EXPECT_GT(cluster.metrics().snapshot().size(), 0u);
    if constexpr (obs::kObsEnabled) {
      EXPECT_GT(tracer.size(), 0u);
    }
  }
  for (std::size_t n = 0; n < cluster.storage_node_count(); ++n) {
    mix(cluster.storage_node(n).target().bytes_written());
    mix(cluster.storage_node(n).dfs_state()->acks_sent);
    mix(cluster.storage_node(n).dfs_state()->cleanups);
  }
  mix(cluster.sim().now());
  mix(cluster.sim().executed_events());
  return h;
}

TEST(ObsNeutrality, TracerAndRegistryDoNotPerturbTheRun) {
  // Span tracing and metric registration/reads add zero simulator events
  // and zero RNG draws, so the full digest — executed_events included —
  // is identical with the whole stack attached. (The sampler is the
  // documented exception: its Periodic ticks add events; see DESIGN.md
  // §3c.) With cmake -DNADFS_OBS=OFF the same property holds trivially:
  // the hooks compile out and this test still passes both ways.
  EXPECT_EQ(run_workload_digest(false), run_workload_digest(true));
}

}  // namespace
}  // namespace nadfs
