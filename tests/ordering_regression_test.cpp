// Regression tests for forwarded-stream network ordering.
//
// sPIN requires the network to deliver a message's header packet first and
// its completion packet last (§II-B.1). For *forwarded* streams
// (replication hops, EC intermediate parities) the forwarding NIC must
// enforce this itself: payload handlers run concurrently, and a short final
// packet encodes faster than its full-size predecessors, so without
// outbound ordering its forward overtakes them on the wire and the next hop
// drops it ("payload before header"/"completion before payload"). The NIC
// outbound engine therefore drains a message's sends in issue order
// (pspin::MsgState::last_send_start).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ec/reed_solomon.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

/// EC write sized so each chunk's final packet carries only a few bytes:
/// its encode handler finishes ~1000x sooner than full-packet handlers.
TEST(ForwardOrdering, TinyFinalPacketParityStreamStaysOrdered) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;

  // Chunk = first-packet data + 2 full packets + 16 bytes.
  // (header bytes for an EC WRH with 2 parity coords: 62 + 22 + 24 = 108.)
  const std::size_t chunk = (2048 - 108) + 2 * 2048 + 16;
  const std::size_t size = chunk * 3;
  const auto& layout = cluster.metadata().create("o", size, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(size, 1);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
  std::vector<Bytes> chunks(3);
  for (unsigned i = 0; i < 3; ++i) {
    chunks[i].assign(data.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                     data.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
  }
  ec::ReedSolomon rs(3, 2);
  const auto parity = rs.encode(chunks);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.storage_by_node(layout.parity[i].node)
                  .target()
                  .read(layout.parity[i].addr, chunk_len),
              parity[i])
        << "parity " << i << " corrupted: forwarded stream arrived out of order";
  }
  // No packets were dropped at the parity nodes.
  for (std::size_t n = 0; n < cluster.storage_node_count(); ++n) {
    EXPECT_EQ(cluster.storage_node(n).dfs_state()->table.in_use(), 0u);
    EXPECT_EQ(cluster.storage_node(n).pspin().live_messages(), 0u);
  }
}

/// Same shape for a replication chain: the forwarded tail packet must not
/// overtake its predecessors between hops.
TEST(ForwardOrdering, TinyFinalPacketReplicationChainStaysOrdered) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kRing;
  policy.repl_k = 4;
  const auto& layout = cluster.metadata().create("o", 64 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  // 5 full packets + 8-byte tail.
  const std::size_t size = (2048 - 130) + 4 * 2048 + 8;
  const Bytes data = random_bytes(size, 2);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data);
  }
}

/// Concurrent messages on different clusters must still be individually
/// ordered even though their handler cursors interleave arbitrarily.
TEST(ForwardOrdering, ConcurrentEcWritesAllProduceCorrectParity) {
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0), c1(cluster, 1);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;

  struct Obj {
    const services::FileLayout* layout;
    Bytes data;
  };
  std::vector<Obj> objs;
  unsigned oks = 0;
  for (int i = 0; i < 6; ++i) {
    const std::size_t size = 10000 + static_cast<std::size_t>(i) * 7001;
    Obj o;
    o.layout = &cluster.metadata().create("o" + std::to_string(i), size, policy);
    o.data = random_bytes(size, 100 + i);
    objs.push_back(std::move(o));
  }
  for (std::size_t i = 0; i < objs.size(); ++i) {
    Client& client = i % 2 ? c1 : c0;
    const auto cap = cluster.metadata().grant(client.client_id(), *objs[i].layout,
                                              auth::Right::kWrite);
    client.write(*objs[i].layout, cap, objs[i].data, [&oks](bool o, TimePs) { oks += o; });
  }
  cluster.sim().run();
  ASSERT_EQ(oks, objs.size());

  ec::ReedSolomon rs(3, 2);
  for (const auto& obj : objs) {
    const auto chunk_len = static_cast<std::size_t>(obj.layout->chunk_len);
    Bytes padded = obj.data;
    padded.resize(chunk_len * 3, 0);
    std::vector<Bytes> chunks(3);
    for (unsigned i = 0; i < 3; ++i) {
      chunks[i].assign(padded.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                       padded.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
    }
    const auto parity = rs.encode(chunks);
    for (unsigned i = 0; i < 2; ++i) {
      ASSERT_EQ(cluster.storage_by_node(obj.layout->parity[i].node)
                    .target()
                    .read(obj.layout->parity[i].addr, chunk_len),
                parity[i])
          << "object " << obj.layout->object_id << " parity " << i;
    }
  }
}

}  // namespace
}  // namespace nadfs
