// Parallel == serial, proven. The domain-partitioned conservative core
// (DESIGN.md §3f) promises bit-identical event ordering: a partitioned run
// must reproduce the serial scheduler's (when, seq) pop order exactly, for
// any domain count and any worker-thread count. This suite is the proof
// harness:
//
//   - a scheduler-level differential oracle: randomized event storms
//     (zero-delay ties, cross-domain handoffs, fences) executed on a serial
//     simulator and on partitioned twins, comparing the pop-observer logs
//     element by element across multiple seeds and shapes;
//   - whole-system differentials: the sPIN-PBT write stack, a chaos run
//     with mid-run fault-plan mutation, and the multi-tenant workload
//     engine (conservative and aggressive per-client-lane mappings), each
//     compared serial-vs-parallel by digest, final time, and event count;
//   - fence semantics: exact serial position, and the lookahead guard for
//     fences and cross-domain events scheduled from inside events.
//
// Every failure message names the seed, domain count, and thread count so
// a red run is immediately reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;
using services::SimParallelConfig;
using workload::Engine;
using workload::EngineConfig;
using workload::TenantSpec;

// ------------------------------------------------- scheduler-level oracle

struct PopLog {
  std::vector<std::pair<TimePs, std::uint64_t>> pops;
};

void record_pop(void* ctx, TimePs when, std::uint64_t seq) {
  static_cast<PopLog*>(ctx)->pops.emplace_back(when, seq);
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

struct StormShape {
  const char* name;
  bool zero_delay;   ///< spawn same-time ties (intra-domain only)
  bool cross_heavy;  ///< bias spawns toward cross-domain handoffs
  bool fences;       ///< sprinkle fences into the storm
};

constexpr TimePs kStormLookahead = 20'000;  // the 20 ns link-latency horizon

/// One storm event. Behavior is a pure function of (seed, id, depth, home
/// domain): every random choice is drawn from an Rng keyed on those alone,
/// so the event makes identical decisions no matter which thread or window
/// executes it — the pop order is the only degree of freedom under test.
struct StormCtx {
  sim::Simulator& sim;
  StormShape shape;
  std::uint64_t seed;
  std::size_t domains;

  void fire(std::uint64_t id, unsigned depth, sim::DomainId home) {
    if (depth >= 6) return;
    Rng rng(mix64(seed ^ mix64(id)));
    // Roots always fan out (an unlucky seed must not degenerate the storm);
    // deeper events draw 0..3 children so the storm still terminates.
    const unsigned children =
        depth == 0 ? 3 : static_cast<unsigned>(rng.next_below(4));
    for (unsigned k = 0; k < children; ++k) {
      const std::uint64_t child = mix64(id * 4 + k + 1);
      const std::uint64_t roll = rng.next_below(100);
      if (shape.fences && roll < 10) {
        // In-event fences need the conservative horizon, like any
        // cross-domain delivery.
        const TimePs delay = kStormLookahead + rng.next_below(3) * 7'000;
        sim.schedule_fence(delay, [this, child, depth] { fire(child, depth + 1, 0); });
        continue;
      }
      const bool cross = roll < (shape.cross_heavy ? 70 : 30);
      if (cross && domains > 1) {
        const auto target = static_cast<sim::DomainId>(
            (home + 1 + rng.next_below(domains - 1)) % domains);
        const TimePs delay = kStormLookahead + rng.next_below(5) * 3'000;
        sim.schedule_at_domain(target, sim.now() + delay, [this, child, depth, target] {
          fire(child, depth + 1, target);
        });
        continue;
      }
      // Intra-domain: any delay is legal, including zero — the dense
      // same-time tie chains are exactly where ordering bugs hide.
      const TimePs delay =
          shape.zero_delay && rng.next_below(2) == 0 ? 0 : rng.next_below(4) * 5'000;
      sim.schedule(delay, [this, child, depth, home] { fire(child, depth + 1, home); });
    }
  }
};

struct StormResult {
  PopLog log;
  TimePs final_time = 0;
  std::uint64_t executed = 0;
};

StormResult run_storm(const StormShape& shape, std::uint64_t seed, std::size_t domains,
                      unsigned threads, bool partitioned) {
  sim::Simulator sim;
  if (partitioned) sim.enable_partitions(domains, kStormLookahead, threads);
  StormResult r;
  sim.set_pop_observer(&record_pop, &r.log);
  StormCtx ctx{sim, shape, seed, domains};
  // Seed every domain with a root event (scheduling from outside events may
  // target any domain at any time).
  for (std::size_t d = 0; d < domains; ++d) {
    const auto dom = static_cast<sim::DomainId>(d);
    sim.schedule_at_domain(dom, 1'000 + 500 * d, [&ctx, d, dom] {
      ctx.fire(mix64(d + 1), 0, dom);
    });
  }
  r.final_time = sim.run();
  r.executed = sim.executed_events();
  return r;
}

TEST(ParallelSimOracle, PopOrderMatchesSerialAcrossSeedsShapesAndThreads) {
  const StormShape shapes[] = {
      {"zero_delay_ties", true, false, false},
      {"cross_domain_heavy", false, true, false},
      {"fenced", true, false, true},
  };
  for (const auto& shape : shapes) {
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      for (const std::size_t domains : {2ull, 4ull}) {
        const auto serial = run_storm(shape, seed, domains, 0, /*partitioned=*/false);
        ASSERT_GT(serial.log.pops.size(), 10u)
            << "shape " << shape.name << " seed " << seed << " degenerated";
        for (const unsigned threads : {1u, 4u}) {
          const auto par = run_storm(shape, seed, domains, threads, /*partitioned=*/true);
          const std::string where = std::string("shape ") + shape.name + " seed " +
                                    std::to_string(seed) + " domains " +
                                    std::to_string(domains) + " threads " +
                                    std::to_string(threads);
          ASSERT_EQ(par.log.pops.size(), serial.log.pops.size()) << where;
          for (std::size_t i = 0; i < serial.log.pops.size(); ++i) {
            ASSERT_EQ(par.log.pops[i], serial.log.pops[i])
                << where << ": divergence at pop " << i << " (serial when="
                << serial.log.pops[i].first << " seq=" << serial.log.pops[i].second
                << ", parallel when=" << par.log.pops[i].first << " seq="
                << par.log.pops[i].second << ")";
          }
          EXPECT_EQ(par.final_time, serial.final_time) << where;
          EXPECT_EQ(par.executed, serial.executed) << where;
        }
      }
    }
  }
}

// ------------------------------------------------------- fence semantics

TEST(ParallelSimOracle, FenceExecutesAtItsExactSerialPosition) {
  // A fence scheduled between two plain events at the same timestamp must
  // execute between them — the same (when, seq) slot a plain schedule call
  // would occupy — with identical observations in serial and partitioned
  // runs.
  struct Obs {
    std::uint64_t events_before_fence = 0;
    TimePs fence_now = 0;
  };
  auto run = [](bool partitioned, unsigned threads) {
    sim::Simulator sim;
    if (partitioned) sim.enable_partitions(3, kStormLookahead, threads);
    Obs obs;
    sim.schedule_at_domain(1, 5'000, [] {});
    sim.schedule_fence_at(5'000, [&sim, &obs] {
      obs.events_before_fence = sim.executed_events();
      obs.fence_now = sim.now();
    });
    sim.schedule_at_domain(2, 5'000, [] {});
    sim.run();
    return std::make_tuple(obs.events_before_fence, obs.fence_now, sim.executed_events());
  };
  const auto serial = run(false, 0);
  // Exactly the first same-time event ran before the fence (the count
  // includes the fence itself: executed_events() is bumped before the
  // payload fires).
  EXPECT_EQ(std::get<0>(serial), 2u);
  EXPECT_EQ(std::get<1>(serial), 5'000u);
  for (const unsigned threads : {1u, 4u}) {
    EXPECT_EQ(run(true, threads), serial) << "threads " << threads;
  }
}

TEST(ParallelSimOracle, InEventFenceInsideLookaheadThrows) {
  sim::Simulator sim;
  sim.enable_partitions(2, kStormLookahead, 1);
  sim.schedule(1'000, [&sim] {
    sim.schedule_fence(kStormLookahead / 2, [] {});  // inside the horizon
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(ParallelSimOracle, CrossDomainScheduleInsideLookaheadThrows) {
  sim::Simulator sim;
  sim.enable_partitions(2, kStormLookahead, 1);
  sim.schedule_at_domain(0, 1'000, [&sim] {
    sim.schedule_at_domain(1, sim.now() + kStormLookahead - 1, [] {});
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

// -------------------------------------------- whole-system differentials

SimParallelConfig par_on(unsigned threads, unsigned storage_domains = 0,
                         bool per_client = false) {
  SimParallelConfig par;
  par.mode = SimParallelConfig::Mode::kOn;
  par.threads = threads;
  par.storage_domains = storage_domains;
  par.per_client_domains = per_client;
  return par;
}

SimParallelConfig par_off() {
  SimParallelConfig par;
  par.mode = SimParallelConfig::Mode::kOff;
  return par;
}

/// Digest of a full replicated-write run: storage bytes, final time, event
/// count — the whole observable outcome.
std::uint64_t spin_pbt_digest(SimParallelConfig par, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.parallel = par;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kPbt;
  policy.repl_k = 4;
  const std::size_t size = 5 * 2048 + 13;
  const auto& layout = cluster.metadata().create("o", size, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) b = rng.next_byte();
  bool ok = false;
  client.write(layout, cap, data, [&ok](bool w, TimePs) { ok = w; });
  const TimePs final_time = cluster.sim().run();
  EXPECT_TRUE(ok);

  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  mix_u64(final_time);
  mix_u64(cluster.sim().executed_events());
  for (const auto& coord : layout.targets) {
    for (const auto b : cluster.storage_by_node(coord.node).target().read(coord.addr, size)) {
      mix_byte(b);
    }
  }
  return h;
}

TEST(ParallelSimSystem, SpinPbtWriteDigestMatchesSerial) {
  for (const std::uint64_t seed : {7ull, 21ull, 33ull}) {
    const auto serial = spin_pbt_digest(par_off(), seed);
    for (const unsigned threads : {1u, 4u}) {
      for (const unsigned domains : {2u, 4u}) {
        EXPECT_EQ(spin_pbt_digest(par_on(threads, domains), seed), serial)
            << "seed " << seed << " domains " << domains << " threads " << threads;
      }
    }
  }
}

struct SysResult {
  std::uint64_t digest = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  TimePs last_completion = 0;
  std::uint64_t executed = 0;

  bool operator==(const SysResult& o) const {
    return digest == o.digest && offered == o.offered && completed == o.completed &&
           failed == o.failed && last_completion == o.last_completion && executed == o.executed;
  }
};

std::ostream& operator<<(std::ostream& os, const SysResult& r) {
  return os << "{digest=" << r.digest << " offered=" << r.offered << " completed=" << r.completed
            << " failed=" << r.failed << " last=" << r.last_completion
            << " executed=" << r.executed << "}";
}

/// Mixed multi-tenant workload with a mid-run fault-plan mutation (node
/// kill injected through Network::mutate_faults from event context) — the
/// chaos-shaped serial-vs-parallel differential.
SysResult run_chaos_workload(std::uint64_t seed, SimParallelConfig par, bool kill_node) {
  ClusterConfig cc;
  cc.storage_nodes = 4;
  cc.clients = 2;
  cc.parallel = par;
  Cluster cluster(cc);

  EngineConfig ecfg;
  ecfg.users = 1000;
  ecfg.client_slots = 2;
  ecfg.rate_ops_per_s = 4e5;
  ecfg.duration = us(400);
  ecfg.seed = seed;
  TenantSpec tenant;
  tenant.name = "t";
  tenant.objects = 8;
  tenant.object_size = 32 * KiB;
  tenant.io_bytes = 2 * KiB;
  tenant.policy.resiliency = dfs::Resiliency::kReplication;
  tenant.policy.repl_k = 2;
  Engine engine(cluster, ecfg, {tenant});
  if (kill_node) {
    const net::NodeId victim = cluster.storage_node(1).id();
    cluster.sim().schedule_at(us(120), [&cluster, victim] {
      cluster.network().mutate_faults([&cluster, victim](net::FaultPlan& plan) {
        plan.kill_node(victim, cluster.sim().now() + us(1));
      });
    });
  }
  engine.run();

  SysResult r;
  r.digest = engine.digest();
  r.offered = engine.stats().offered;
  r.completed = engine.stats().completed;
  r.failed = engine.stats().failed;
  r.last_completion = engine.stats().last_completion;
  r.executed = cluster.sim().executed_events();
  return r;
}

TEST(ParallelSimSystem, ChaosWorkloadDigestMatchesSerial) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    const auto serial = run_chaos_workload(seed, par_off(), /*kill_node=*/true);
    EXPECT_GT(serial.offered, 0u) << "seed " << seed;
    for (const unsigned threads : {1u, 4u}) {
      const auto par = run_chaos_workload(seed, par_on(threads), /*kill_node=*/true);
      EXPECT_EQ(par, serial) << "seed " << seed << " threads " << threads << " domains "
                             << 4 + 2 << " (storage lanes 4)";
    }
  }
}

TEST(ParallelSimSystem, MixedWorkloadDigestMatchesSerialAcrossSeeds) {
  // No faults: the plain multi-tenant mixed-op differential, >= 3 seeds.
  for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
    const auto serial = run_chaos_workload(seed, par_off(), /*kill_node=*/false);
    for (const unsigned threads : {1u, 4u}) {
      const auto par = run_chaos_workload(seed, par_on(threads), /*kill_node=*/false);
      EXPECT_EQ(par, serial) << "seed " << seed << " threads " << threads;
    }
  }
}

// ------------------------------------------- aggressive per-client lanes

SysResult run_rw_workload(std::uint64_t seed, SimParallelConfig par) {
  ClusterConfig cc;
  cc.storage_nodes = 4;
  cc.clients = 4;
  cc.parallel = par;
  Cluster cluster(cc);

  EngineConfig ecfg;
  ecfg.users = 1000;
  ecfg.client_slots = 4;
  ecfg.rate_ops_per_s = 6e5;
  ecfg.duration = us(300);
  ecfg.seed = seed;
  TenantSpec tenant;
  tenant.name = "t";
  tenant.objects = 8;
  tenant.object_size = 32 * KiB;
  tenant.io_bytes = 2 * KiB;
  tenant.mix = {0.6, 0.4, 0.0, 0.0};  // read/write only — aggressive-safe
  Engine engine(cluster, ecfg, {tenant});
  engine.run();

  SysResult r;
  r.digest = engine.digest();
  r.offered = engine.stats().offered;
  r.completed = engine.stats().completed;
  r.failed = engine.stats().failed;
  r.last_completion = engine.stats().last_completion;
  r.executed = cluster.sim().executed_events();
  return r;
}

TEST(ParallelSimSystem, AggressiveClientLanesMatchSerial) {
  for (const std::uint64_t seed : {3ull, 11ull, 29ull}) {
    const auto serial = run_rw_workload(seed, par_off());
    EXPECT_GT(serial.completed, 0u) << "seed " << seed;
    for (const unsigned threads : {1u, 4u}) {
      const auto par = run_rw_workload(seed, par_on(threads, 0, /*per_client=*/true));
      EXPECT_EQ(par, serial) << "seed " << seed << " threads " << threads
                             << " (aggressive mapping, 4 storage + 4 client lanes)";
    }
  }
}

TEST(ParallelSimSystem, AggressiveMappingRejectsUnsoundWorkloads) {
  auto make_cluster = [] {
    ClusterConfig cc;
    cc.storage_nodes = 2;
    cc.clients = 2;
    cc.parallel = par_on(1, 0, /*per_client=*/true);
    return cc;
  };
  TenantSpec tenant;
  tenant.objects = 2;

  {
    Cluster cluster(make_cluster());
    EngineConfig ecfg;
    ecfg.rate_ops_per_s = 0.0;  // closed loop: completion-order-dependent
    Engine engine(cluster, ecfg, {tenant});
    EXPECT_THROW(engine.run(), std::logic_error);
  }
  {
    Cluster cluster(make_cluster());
    EngineConfig ecfg;
    ecfg.rate_ops_per_s = 1e5;
    ecfg.duration = us(50);
    TenantSpec appendy = tenant;
    appendy.mix = {0.5, 0.3, 0.2, 0.0};  // append mutates the shared tail
    Engine engine(cluster, ecfg, {appendy});
    EXPECT_THROW(engine.run(), std::logic_error);
  }
  {
    Cluster cluster(make_cluster());
    EngineConfig ecfg;
    ecfg.rate_ops_per_s = 1e5;
    ecfg.duration = us(50);
    TenantSpec staty = tenant;
    staty.mix = {0.5, 0.3, 0.0, 0.2};  // stat reads the shared tail mid-run
    Engine engine(cluster, ecfg, {staty});
    EXPECT_THROW(engine.run(), std::logic_error);
  }
}

// ------------------------------------------------------------ env wiring

TEST(ParallelSimSystem, EnvKnobEnablesPartitionsUnderAutoMode) {
  // Save and restore the knobs: scripts/check.sh runs this binary with
  // NADFS_SIM_PARALLEL exported, and the other suites must keep seeing it.
  const char* prev_par = std::getenv("NADFS_SIM_PARALLEL");
  const std::string saved_par = prev_par ? prev_par : "";
  const char* prev_dom = std::getenv("NADFS_SIM_DOMAINS");
  const std::string saved_dom = prev_dom ? prev_dom : "";

  ASSERT_EQ(setenv("NADFS_SIM_PARALLEL", "1", 1), 0);
  ASSERT_EQ(setenv("NADFS_SIM_DOMAINS", "2", 1), 0);
  {
    ClusterConfig cc;
    cc.storage_nodes = 4;
    Cluster cluster(cc);
    EXPECT_TRUE(cluster.parallel_enabled());
    // lanes: control + 2 storage + fabric
    EXPECT_EQ(cluster.sim().domain_count(), 4u);
    EXPECT_EQ(cluster.sim().lookahead(), cc.network.link_latency);
  }
  ASSERT_EQ(setenv("NADFS_SIM_PARALLEL", "0", 1), 0);
  {
    Cluster cluster{ClusterConfig{}};
    EXPECT_FALSE(cluster.parallel_enabled());
  }
  if (prev_par) {
    setenv("NADFS_SIM_PARALLEL", saved_par.c_str(), 1);
  } else {
    unsetenv("NADFS_SIM_PARALLEL");
  }
  if (prev_dom) {
    setenv("NADFS_SIM_DOMAINS", saved_dom.c_str(), 1);
  } else {
    unsetenv("NADFS_SIM_DOMAINS");
  }
}

}  // namespace
}  // namespace nadfs
