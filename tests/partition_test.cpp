// Partition chaos: cut the only spine trunk of a leaf/spine cluster and
// verify the system stays split-brain-free.
//
// Topology: leaf_spine(2, 1) — two leaves, one spine (switch id 2), so
// trunk_down(leaf, spine) is a true two-sided partition. With 6 storage
// nodes and 2 clients attached round-robin, leaf 0 carries nodes
// {0, 2, 4, 6} and leaf 1 carries {1, 3, 5, 7}. A partition-aware
// FailureDetector runs on *each* side: during the cut each sees exactly
// half its peers go dark simultaneously, which trips the suspect quorum —
// escalation is held (kPartitioned), nobody is declared failed, and no
// recovery is triggered. The cut heals by fault-plan window expiry; both
// sides rehabilitate and a post-heal read returns the original bytes.
//
// Seeded via NADFS_CHAOS_SEED like the chaos suite; every scenario runs
// twice and must produce bit-identical digests.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "services/failure_detector.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FailureDetector;
using services::FilePolicy;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("NADFS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void u8(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const Bytes& b) {
    u64(b.size());
    for (auto x : b) u8(x);
  }
};

constexpr TimePs kCutAt = us(100);
constexpr TimePs kHealAt = us(400);  // heals by window expiry, no explicit event
constexpr TimePs kRunUntil = us(700);

ClusterConfig partitioned_config() {
  ClusterConfig cfg;
  cfg.storage_nodes = 6;
  // Three client nodes: a leaf-0 observer (node 6), a leaf-1 observer
  // (node 7), and a leaf-0 writer (node 8). Probers get dedicated nodes —
  // a detector owns its prober's NIC control handler.
  cfg.clients = 3;
  cfg.network.topology = net::Topology::leaf_spine(2, 1);
  return cfg;
}

/// The storage peers on the same / other leaf as `client_node`, by the
/// round-robin attachment rule.
bool same_side(const net::Topology& topo, net::NodeId a, net::NodeId b) {
  return topo.leaf_of(a) == topo.leaf_of(b);
}

TEST(Partition, TrunkCutIsSplitBrainFreeAndHeals) {
  auto run = [] {
    Cluster cluster(partitioned_config());
    const net::Topology& topo = cluster.network().topology();
    const net::SwitchId spine = topo.spine_id(0);
    Client prober_a(cluster, 0);  // node 6, leaf 0 observer
    Client prober_b(cluster, 1);  // node 7, leaf 1 observer
    Client writer(cluster, 2);    // node 8, leaf 0
    FailureDetector det_a(cluster, prober_a);
    FailureDetector det_b(cluster, prober_b);

    // Seed an object before the cut (spread over both sides by placement).
    const std::size_t size = 16 * KiB;
    const auto& layout = cluster.metadata().create("obj", size, FilePolicy{});
    const auto wcap = cluster.metadata().grant(writer.client_id(), layout, auth::Right::kWrite);
    const Bytes data = random_bytes(size, chaos_seed());
    bool wrote = false;
    writer.write(layout, wcap, data, [&](bool ok, TimePs) { wrote = ok; });
    cluster.sim().run();
    EXPECT_TRUE(wrote);

    // Cut the leaf0<->spine trunk for [kCutAt, kHealAt): a true two-sided
    // partition, healed by window expiry alone.
    cluster.network().faults().trunk_down(0, spine, kCutAt, kHealAt);

    unsigned false_dead_same_side = 0;
    unsigned cross_dark_a = 0, cross_dark_b = 0;
    // Deep inside the cut: every cross-partition peer is dark
    // (suspected/partition-held), every same-side peer alive, and —
    // the split-brain property — neither detector has *failed* anyone.
    cluster.sim().schedule(us(320), [&] {
      for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
        const net::NodeId id = cluster.storage_node(i).id();
        const auto ha = det_a.health(id);
        const auto hb = det_b.health(id);
        if (same_side(topo, id, prober_a.node().id())) {
          if (ha != FailureDetector::Health::kAlive) ++false_dead_same_side;
        } else if (ha != FailureDetector::Health::kAlive) {
          ++cross_dark_a;
        }
        if (same_side(topo, id, prober_b.node().id())) {
          if (hb != FailureDetector::Health::kAlive) ++false_dead_same_side;
        } else if (hb != FailureDetector::Health::kAlive) {
          ++cross_dark_b;
        }
      }
      EXPECT_TRUE(det_a.failed().empty());
      EXPECT_TRUE(det_b.failed().empty());
      EXPECT_TRUE(det_a.partition_suspected());
      EXPECT_TRUE(det_b.partition_suspected());
    });

    det_a.start();
    det_b.start();
    cluster.sim().run_until(kRunUntil);
    det_a.stop();
    det_b.stop();
    cluster.sim().run();

    // Mid-cut observations: each side saw exactly its 3 cross-partition
    // peers dark and zero same-side false positives.
    EXPECT_EQ(false_dead_same_side, 0u);
    EXPECT_EQ(cross_dark_a, 3u);
    EXPECT_EQ(cross_dark_b, 3u);
    // Nobody was ever declared failed: exclusion/recovery never ran.
    EXPECT_TRUE(det_a.failed().empty());
    EXPECT_TRUE(det_b.failed().empty());
    EXPECT_GT(det_a.escalations_held(), 0u);
    EXPECT_GT(det_b.escalations_held(), 0u);
    for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
      EXPECT_FALSE(cluster.metadata().excluded(cluster.storage_node(i).id()));
    }
    // After the heal, every node rehabilitated to alive.
    for (std::size_t i = 0; i < cluster.storage_node_count(); ++i) {
      EXPECT_EQ(det_a.health(cluster.storage_node(i).id()), FailureDetector::Health::kAlive);
      EXPECT_EQ(det_b.health(cluster.storage_node(i).id()), FailureDetector::Health::kAlive);
    }
    // The cut was real: probes (and nothing else) died on the trunk.
    const auto& fc = cluster.network().fault_counters();
    EXPECT_GT(fc.trunk_drops, 0u);
    EXPECT_GT(cluster.network().hop_counters(0).trunk_drops +
                  cluster.network().hop_counters(spine).trunk_drops,
              0u);

    // Post-heal read returns the original bytes across the healed trunk.
    const auto rcap = cluster.metadata().grant(writer.client_id(), layout, auth::Right::kRead);
    Bytes got;
    writer.read(layout, rcap, static_cast<std::uint32_t>(size),
                [&](Bytes d, TimePs) { got = std::move(d); });
    cluster.sim().run();
    EXPECT_EQ(got, data);

    Digest d;
    d.u64(fc.tx_drops);
    d.u64(fc.rx_drops);
    d.u64(fc.trunk_drops);
    d.u64(fc.buffer_drops);
    d.u64(det_a.probes_sent());
    d.u64(det_a.probes_missed());
    d.u64(det_a.indirect_probes());
    d.u64(det_a.escalations_held());
    d.u64(det_b.probes_sent());
    d.u64(det_b.probes_missed());
    d.u64(det_b.indirect_probes());
    d.u64(det_b.escalations_held());
    d.bytes(got);
    if (::testing::Test::HasFailure()) {
      std::printf("[partition] seed=%llu trunk_drops=%llu a(sent=%llu missed=%llu held=%llu) "
                  "b(sent=%llu missed=%llu held=%llu)\n",
                  (unsigned long long)chaos_seed(), (unsigned long long)fc.trunk_drops,
                  (unsigned long long)det_a.probes_sent(),
                  (unsigned long long)det_a.probes_missed(),
                  (unsigned long long)det_a.escalations_held(),
                  (unsigned long long)det_b.probes_sent(),
                  (unsigned long long)det_b.probes_missed(),
                  (unsigned long long)det_b.escalations_held());
    }
    return d.h;
  };
  const auto h1 = run();
  const auto h2 = run();
  EXPECT_EQ(h1, h2) << "partition scenario not deterministic";
}

TEST(Partition, QuorumGuardDisabledEscalatesAcrossTheCut) {
  // Same cut with partition awareness off: the leaf-0 detector declares
  // the whole other side dead — exactly the split-brain the quorum guard
  // exists to prevent. (Documents the counterfactual.)
  Cluster cluster(partitioned_config());
  const net::SwitchId spine = cluster.network().topology().spine_id(0);
  Client prober(cluster, 0);
  services::FailureDetectorConfig fcfg;
  fcfg.partition_aware = false;
  fcfg.confirm_probes = 0;
  FailureDetector det(cluster, prober, fcfg);
  cluster.network().faults().trunk_down(0, spine, kCutAt, kHealAt);
  det.start();
  cluster.sim().run_until(kCutAt + us(200));
  det.stop();
  cluster.sim().run();
  EXPECT_EQ(det.failed().size(), 3u);  // nodes 1, 3, 5: false positives
  for (net::NodeId id : det.failed()) {
    EXPECT_EQ(cluster.network().topology().leaf_of(id), 1u);
  }
}

}  // namespace
}  // namespace nadfs
