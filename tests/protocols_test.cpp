// End-to-end tests of every baseline protocol driver against the same
// correctness bar as the sPIN path: right bytes at the right addresses on
// every node involved, sane completion semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ec/reed_solomon.hpp"
#include "protocols/cpu_repl.hpp"
#include "protocols/hyperloop.hpp"
#include "protocols/inec.hpp"
#include "protocols/protocol.hpp"
#include "protocols/raw_rdma.hpp"
#include "protocols/rpc.hpp"

namespace nadfs {
namespace {

using namespace protocols;
using services::ClusterConfig;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

struct Run {
  bool done = false;
  bool ok = false;
  TimePs at = 0;
};

/// Drive one write through `proto` on a fresh host-path cluster (no sPIN
/// context installed) and return the result.
Run drive(Cluster& cluster, Client& client, WriteProtocol& proto, const FileLayout& layout,
          const auth::Capability& cap, const Bytes& data) {
  Run r;
  proto.write(client, layout, cap, data, [&](bool ok, TimePs at) {
    r.done = true;
    r.ok = ok;
    r.at = at;
  });
  cluster.sim().run();
  return r;
}

ClusterConfig host_path_config(unsigned nodes = 4) {
  ClusterConfig cfg;
  cfg.storage_nodes = nodes;
  cfg.install_dfs = false;
  return cfg;
}

TEST(RawWriteProtocol, WritesAndCompletesOnTransportAck) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("o", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  RawWrite proto(cluster);

  const Bytes data = random_bytes(20000, 1);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node)
                .target()
                .read(layout.targets[0].addr, data.size()),
            data);
}

TEST(RpcProtocol, WritesViaBounceBuffer) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("o", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  RpcWrite proto(cluster);

  const Bytes data = random_bytes(30000, 2);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node)
                .target()
                .read(layout.targets[0].addr, data.size()),
            data);
}

TEST(RpcProtocol, RejectsForgedCapability) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("o", 16 * KiB, FilePolicy{});
  auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  cap.mac ^= 0xBAD;
  RpcWrite proto(cluster);

  const auto r = drive(cluster, client, proto, layout, cap, random_bytes(4 * KiB, 3));
  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(proto.validation_failures(), 1u);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node).target().bytes_written(), 0u);
}

TEST(RpcRdmaProtocol, ZeroCopyWrite) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("o", 128 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  RpcRdmaWrite proto(cluster);

  const Bytes data = random_bytes(100000, 4);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node)
                .target()
                .read(layout.targets[0].addr, data.size()),
            data);
}

TEST(RpcRdmaProtocol, LargeWriteBeatsRpcBounceBuffer) {
  // For large writes the RPC bounce-buffer copy dominates; RPC+RDMA's extra
  // RTT is cheaper (paper Fig. 6 crossover).
  const Bytes data = random_bytes(512 * KiB, 5);
  TimePs rpc_at, rpcrdma_at;
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RpcWrite proto(cluster);
    rpc_at = drive(cluster, client, proto, layout, cap, data).at;
  }
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RpcRdmaWrite proto(cluster);
    rpcrdma_at = drive(cluster, client, proto, layout, cap, data).at;
  }
  EXPECT_LT(rpcrdma_at, rpc_at);
}

FilePolicy repl_policy(dfs::ReplStrategy strategy, std::uint8_t k) {
  FilePolicy p;
  p.resiliency = dfs::Resiliency::kReplication;
  p.strategy = strategy;
  p.repl_k = k;
  return p;
}

void expect_replicated(Cluster& cluster, const FileLayout& layout, const Bytes& data) {
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data)
        << "replica at node " << coord.node;
  }
}

TEST(CpuReplProtocol, RingReplicatesToAllNodes) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout =
      cluster.metadata().create("o", 128 * KiB, repl_policy(dfs::ReplStrategy::kRing, 3));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  CpuRepl proto(cluster, dfs::ReplStrategy::kRing, 16 * KiB);

  const Bytes data = random_bytes(100000, 6);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  expect_replicated(cluster, layout, data);
}

TEST(CpuReplProtocol, PbtReplicatesToAllNodes) {
  Cluster cluster(host_path_config(7));
  Client client(cluster, 0);
  const auto& layout =
      cluster.metadata().create("o", 128 * KiB, repl_policy(dfs::ReplStrategy::kPbt, 7));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  CpuRepl proto(cluster, dfs::ReplStrategy::kPbt, 16 * KiB);

  const Bytes data = random_bytes(90000, 7);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  expect_replicated(cluster, layout, data);
}

TEST(CpuReplProtocol, ChunkingPipelinesTheRing) {
  // 512 KiB over a 4-node ring: 16 KiB chunks must beat store-and-forward
  // of the whole write at every hop.
  const Bytes data = random_bytes(512 * KiB, 8);
  TimePs chunked, monolithic;
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout =
        cluster.metadata().create("o", 1 * MiB, repl_policy(dfs::ReplStrategy::kRing, 4));
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    CpuRepl proto(cluster, dfs::ReplStrategy::kRing, 16 * KiB);
    chunked = drive(cluster, client, proto, layout, cap, data).at;
  }
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout =
        cluster.metadata().create("o", 1 * MiB, repl_policy(dfs::ReplStrategy::kRing, 4));
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    CpuRepl proto(cluster, dfs::ReplStrategy::kRing, 0);
    monolithic = drive(cluster, client, proto, layout, cap, data).at;
  }
  EXPECT_LT(chunked, monolithic);
}

TEST(RdmaFlatProtocol, ClientWritesEveryReplica) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout =
      cluster.metadata().create("o", 64 * KiB, repl_policy(dfs::ReplStrategy::kRing, 4));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  RdmaFlat proto(cluster);

  const Bytes data = random_bytes(40000, 9);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  expect_replicated(cluster, layout, data);
}

TEST(HyperLoopProtocol, RingReplicatesWithoutStorageCpu) {
  Cluster cluster(host_path_config());
  Client client(cluster, 0);
  const auto& layout =
      cluster.metadata().create("o", 128 * KiB, repl_policy(dfs::ReplStrategy::kRing, 3));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  HyperLoop proto(cluster, 32 * KiB);

  const Bytes data = random_bytes(100000, 10);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  expect_replicated(cluster, layout, data);
  // NIC-only: no CPU server was ever installed, so forwarding came from the
  // triggered WQEs.
}

TEST(HyperLoopProtocol, ConfigOverheadHurtsSmallWrites) {
  // HyperLoop pays the metadata ring before data flows; RDMA-Flat does not
  // (paper Fig. 9: Flat wins small, HyperLoop catches up on large writes).
  const Bytes small = random_bytes(4 * KiB, 11);
  TimePs flat_at, hl_at;
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout =
        cluster.metadata().create("o", 64 * KiB, repl_policy(dfs::ReplStrategy::kRing, 4));
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RdmaFlat proto(cluster);
    flat_at = drive(cluster, client, proto, layout, cap, small).at;
  }
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout =
        cluster.metadata().create("o", 64 * KiB, repl_policy(dfs::ReplStrategy::kRing, 4));
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    HyperLoop proto(cluster, 0);
    hl_at = drive(cluster, client, proto, layout, cap, small).at;
  }
  EXPECT_GT(hl_at, flat_at);
}

TEST(InecProtocol, WritesDataAndCorrectParity) {
  Cluster cluster(host_path_config(5));
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const auto& layout = cluster.metadata().create("o", 30000, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  InecTriEc proto(cluster);

  Bytes data = random_bytes(30000, 12);
  const auto r = drive(cluster, client, proto, layout, cap, data);
  ASSERT_TRUE(r.done);
  EXPECT_TRUE(r.ok);

  const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
  Bytes padded = data;
  padded.resize(chunk_len * 3, 0);
  std::vector<Bytes> chunks(3);
  for (unsigned i = 0; i < 3; ++i) {
    chunks[i].assign(padded.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                     padded.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
    EXPECT_EQ(cluster.storage_by_node(layout.targets[i].node)
                  .target()
                  .read(layout.targets[i].addr, chunk_len),
              chunks[i]);
  }
  ec::ReedSolomon rs(3, 2);
  const auto parity = rs.encode(chunks);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.storage_by_node(layout.parity[i].node)
                  .target()
                  .read(layout.parity[i].addr, chunk_len),
              parity[i])
        << "parity " << i;
  }
}

TEST(CrossProtocol, SpinOverheadOverRawIsModest) {
  // Fig. 6: sPIN adds bounded overhead over raw writes (up to ~27% for
  // small writes, approaching raw for large ones).
  const Bytes small = random_bytes(1 * KiB, 13);
  const Bytes large = random_bytes(512 * KiB, 14);
  TimePs raw_small, raw_large, spin_small, spin_large;
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RawWrite proto(cluster);
    raw_small = drive(cluster, client, proto, layout, cap, small).at;
  }
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RawWrite proto(cluster);
    raw_large = drive(cluster, client, proto, layout, cap, large).at;
  }
  {
    Cluster cluster;  // sPIN installed
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    SpinWrite proto;
    spin_small = drive(cluster, client, proto, layout, cap, small).at;
  }
  {
    Cluster cluster;
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    SpinWrite proto;
    spin_large = drive(cluster, client, proto, layout, cap, large).at;
  }
  EXPECT_GT(spin_small, raw_small);
  // Small-write overhead bounded (paper: up to 27%; allow headroom).
  EXPECT_LT(static_cast<double>(spin_small), static_cast<double>(raw_small) * 1.6);
  // Large-write overhead amortized to a few percent.
  EXPECT_LT(static_cast<double>(spin_large), static_cast<double>(raw_large) * 1.10);
}

TEST(CrossProtocol, RpcSlowerThanSpinForValidatedWrites) {
  const Bytes data = random_bytes(64 * KiB, 15);
  TimePs rpc_at, spin_at;
  {
    Cluster cluster(host_path_config());
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    RpcWrite proto(cluster);
    rpc_at = drive(cluster, client, proto, layout, cap, data).at;
  }
  {
    Cluster cluster;
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("o", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    SpinWrite proto;
    spin_at = drive(cluster, client, proto, layout, cap, data).at;
  }
  EXPECT_LT(spin_at, rpc_at);
}

}  // namespace
}  // namespace nadfs
