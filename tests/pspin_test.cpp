// Unit tests of the PsPIN device model against a fake NIC: ordering
// guarantees (HH before PHs, CH after all PHs), the calibrated ingress
// pipeline, the record-then-replay cost model, egress command-queue
// stalling, storage fences, and the cleanup-handler extension.
#include <gtest/gtest.h>

#include <memory>

#include "pspin/device.hpp"
#include "sim/simulator.hpp"
#include "spin/handler.hpp"
#include "spin/nic_services.hpp"

namespace nadfs::pspin {
namespace {

using spin::HandlerCtx;
using spin::HandlerType;

/// NIC stub: infinite-rate egress with recorded sends, fixed-latency DMA.
class FakeNic : public spin::NicServices {
 public:
  explicit FakeNic(sim::Simulator& simulator) : sim_(simulator) {}

  struct SentRecord {
    net::Packet pkt;
    TimePs ready;
  };
  std::vector<SentRecord> sent;
  std::vector<std::pair<std::uint64_t, TimePs>> events;
  TimePs egress_serialization = ns(41);  // ~2 KiB at 400 Gbit/s
  TimePs dma_latency = ns(250);
  Bytes storage = Bytes(1 << 20, 0);

  sim::Window egress_send(net::Packet pkt, TimePs ready) override {
    const TimePs start = std::max(ready, wire_busy_);
    const TimePs end = start + egress_serialization;
    wire_busy_ = end;
    sent.push_back(SentRecord{std::move(pkt), ready});
    return {start, end};
  }
  TimePs dma_to_storage(std::uint64_t addr, Bytes data, TimePs ready) override {
    std::copy(data.begin(), data.end(), storage.begin() + static_cast<std::ptrdiff_t>(addr));
    return ready + dma_latency;
  }
  std::pair<Bytes, TimePs> dma_from_storage(std::uint64_t addr, std::size_t len,
                                            TimePs ready) override {
    return {peek_storage(addr, len), ready + dma_latency};
  }
  Bytes peek_storage(std::uint64_t addr, std::size_t len) override {
    return Bytes(storage.begin() + static_cast<std::ptrdiff_t>(addr),
                 storage.begin() + static_cast<std::ptrdiff_t>(addr + len));
  }
  void notify_host(std::uint64_t code, std::uint64_t arg, TimePs when) override {
    events.emplace_back(code, when);
    (void)arg;
  }
  net::NodeId node_id() const override { return 9; }

 private:
  sim::Simulator& sim_;
  TimePs wire_busy_ = 0;
};

net::Packet make_packet(std::uint64_t msg, std::uint32_t seq, std::uint32_t count,
                        std::size_t payload = 2048) {
  net::Packet p;
  p.src = 1;
  p.dst = 9;
  p.opcode = net::Opcode::kRdmaWrite;
  p.msg_id = msg;
  p.seq = seq;
  p.pkt_count = count;
  p.data.assign(payload, 0xAA);
  return p;
}

struct Trace {
  std::vector<std::string> order;  // "HH", "PH0", "CH", ...
};

spin::ExecutionContext tracing_context(std::shared_ptr<Trace> trace, std::uint32_t hh_cycles = 200,
                                       std::uint32_t ph_cycles = 90,
                                       std::uint32_t ch_cycles = 100) {
  spin::ExecutionContext ctx;
  ctx.state = trace;
  ctx.state_bytes = 64;
  ctx.header_handler = [trace, hh_cycles](HandlerCtx& c, const net::Packet&) {
    trace->order.push_back("HH");
    c.charge(100, hh_cycles);
  };
  ctx.payload_handler = [trace, ph_cycles](HandlerCtx& c, const net::Packet& p) {
    trace->order.push_back("PH" + std::to_string(p.seq));
    c.charge(50, ph_cycles);
  };
  ctx.completion_handler = [trace, ch_cycles](HandlerCtx& c, const net::Packet&) {
    trace->order.push_back("CH");
    c.charge(60, ch_cycles);
  };
  ctx.cleanup_handler = [trace](HandlerCtx& c, const spin::MessageKey&) {
    trace->order.push_back("CLEANUP");
    c.charge(40, 80);
    c.notify_host(99, 0);
  };
  return ctx;
}

struct Rig {
  sim::Simulator sim;
  FakeNic nic{sim};
  PsPinDevice dev{sim};
  std::shared_ptr<Trace> trace = std::make_shared<Trace>();

  explicit Rig(PsPinConfig cfg = {}) : dev(sim, cfg) {
    dev.attach_nic(nic);
    dev.install(tracing_context(trace));
  }
};

TEST(PsPinDevice, InstallRejectsOversizedState) {
  sim::Simulator sim;
  PsPinDevice dev(sim);
  spin::ExecutionContext ctx;
  ctx.state_bytes = dev.nic_memory_bytes() + 1;
  EXPECT_FALSE(dev.install(std::move(ctx)));
  EXPECT_FALSE(dev.installed());
  // Paper budget: 4x1 MiB L1 + 4 MiB L2 = 8 MiB.
  EXPECT_EQ(dev.nic_memory_bytes(), 8 * MiB);
}

TEST(PsPinDevice, SinglePacketRunsAllThreeHandlers) {
  Rig rig;
  rig.dev.on_packet(make_packet(1, 0, 1));
  rig.sim.run();
  EXPECT_EQ(rig.trace->order, (std::vector<std::string>{"HH", "PH0", "CH"}));
}

TEST(PsPinDevice, HhBeforePhsChBeforeNone) {
  Rig rig;
  for (std::uint32_t s = 0; s < 5; ++s) rig.dev.on_packet(make_packet(1, s, 5));
  rig.sim.run();
  ASSERT_EQ(rig.trace->order.size(), 7u);
  EXPECT_EQ(rig.trace->order.front(), "HH");
  EXPECT_EQ(rig.trace->order.back(), "CH");
}

TEST(PsPinDevice, IngressPipelineMatchesFig7) {
  // 2 KiB packet: 32 + 2 + 43 cycles of pipeline + 1 ns dispatch before the
  // HH starts; HH of 200 cycles ends ~278 ns after arrival.
  Rig rig;
  rig.dev.on_packet(make_packet(1, 0, 1));
  rig.sim.run();
  const auto& stats = rig.dev.stats();
  EXPECT_NEAR(stats.duration_ns(HandlerType::kHeader).mean(), 200.0, 1.0);
  // The wire-visible effect: the CH's ack would leave after pipeline + HH +
  // PH + CH. Not directly observable here, but total handler time is.
  EXPECT_NEAR(stats.duration_ns(HandlerType::kPayload).mean(), 90.0, 1.0);
}

TEST(PsPinDevice, ChargedCyclesBecomeDuration) {
  Rig rig;
  rig.dev.on_packet(make_packet(1, 0, 1, 500));
  rig.sim.run();
  const auto& stats = rig.dev.stats();
  EXPECT_DOUBLE_EQ(stats.duration_ns(HandlerType::kHeader).mean(), 200.0);
  EXPECT_DOUBLE_EQ(stats.instructions(HandlerType::kHeader).mean(), 100.0);
  EXPECT_DOUBLE_EQ(stats.ipc(HandlerType::kHeader), 0.5);
}

TEST(PsPinDevice, MessagesSpreadAcrossClusters) {
  // Two concurrent messages map to different clusters, so their handlers
  // run on disjoint HPU pools.
  Rig rig;
  for (std::uint64_t m = 1; m <= 8; ++m) rig.dev.on_packet(make_packet(m, 0, 1));
  rig.sim.run();
  EXPECT_EQ(rig.dev.stats().duration_ns(HandlerType::kHeader).count(), 8u);
  EXPECT_EQ(rig.dev.live_messages(), 0u);
}

TEST(PsPinDevice, EgressQueueStallsSends) {
  // A handler issuing many sends back-to-back must stall once the command
  // queue (depth 4 here) is full: duration ≈ charged + queue-drain time.
  PsPinConfig cfg;
  cfg.egress_queue_depth = 4;
  sim::Simulator sim;
  FakeNic nic(sim);
  PsPinDevice dev(sim, cfg);
  dev.attach_nic(nic);

  spin::ExecutionContext ctx;
  ctx.state_bytes = 0;
  ctx.header_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.completion_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.payload_handler = [](HandlerCtx& c, const net::Packet&) {
    c.charge(10, 10);
    for (int i = 0; i < 12; ++i) {
      net::Packet out;
      out.dst = 2;
      out.data.assign(2048, 0);
      c.send(std::move(out));
    }
  };
  dev.install(std::move(ctx));
  dev.on_packet(make_packet(1, 0, 1));
  sim.run();

  // 12 sends, queue depth 4, wire 41 ns each: the handler must wait for
  // ~8 wire slots => duration well above the 10 charged cycles.
  const double ph = dev.stats().duration_ns(HandlerType::kPayload).mean();
  EXPECT_GT(ph, 8 * 41.0 * 0.8);
  EXPECT_EQ(nic.sent.size(), 12u);
}

TEST(PsPinDevice, StorageFenceDelaysSubsequentCommands) {
  // CH: DMA then fence then send — the ack send must leave after the DMA
  // completes (persistence guarantee §III-B.1).
  sim::Simulator sim;
  FakeNic nic(sim);
  nic.dma_latency = us(3);
  PsPinDevice dev(sim);
  dev.attach_nic(nic);

  spin::ExecutionContext ctx;
  ctx.header_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.payload_handler = [](HandlerCtx& c, const net::Packet& p) {
    c.charge(1, 1);
    c.dma_to_storage(0, p.data);
  };
  ctx.completion_handler = [](HandlerCtx& c, const net::Packet&) {
    c.charge(1, 1);
    c.storage_fence();
    net::Packet ack;
    ack.dst = 1;
    ack.opcode = net::Opcode::kAck;
    c.send(std::move(ack));
  };
  dev.install(std::move(ctx));
  dev.on_packet(make_packet(1, 0, 1));
  sim.run();

  ASSERT_EQ(nic.sent.size(), 1u);
  EXPECT_GE(nic.sent[0].ready, us(3));  // waited for the 3 us DMA
}

TEST(PsPinDevice, FunctionalDataReachesStorage) {
  sim::Simulator sim;
  FakeNic nic(sim);
  PsPinDevice dev(sim);
  dev.attach_nic(nic);

  spin::ExecutionContext ctx;
  ctx.header_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.completion_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.payload_handler = [](HandlerCtx& c, const net::Packet& p) {
    c.charge(1, 1);
    c.dma_to_storage(100 + p.seq * 2048, p.data);
  };
  dev.install(std::move(ctx));
  for (std::uint32_t s = 0; s < 3; ++s) {
    auto p = make_packet(1, s, 3);
    std::fill(p.data.begin(), p.data.end(), static_cast<std::uint8_t>(s + 1));
    dev.on_packet(std::move(p));
  }
  sim.run();
  EXPECT_EQ(nic.storage[100], 1);
  EXPECT_EQ(nic.storage[100 + 2048], 2);
  EXPECT_EQ(nic.storage[100 + 4096], 3);
}

TEST(PsPinDevice, ReadStorageBlocksReplay) {
  sim::Simulator sim;
  FakeNic nic(sim);
  nic.dma_latency = us(5);
  nic.storage[7] = 0x77;
  PsPinDevice dev(sim);
  dev.attach_nic(nic);

  Bytes seen;
  spin::ExecutionContext ctx;
  ctx.header_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.payload_handler = [](HandlerCtx& c, const net::Packet&) { c.charge(1, 1); };
  ctx.completion_handler = [&seen](HandlerCtx& c, const net::Packet&) {
    c.charge(1, 1);
    seen = c.read_storage(7, 1);  // functional data available immediately
    net::Packet resp;
    resp.dst = 1;
    c.send(std::move(resp));
  };
  dev.install(std::move(ctx));
  dev.on_packet(make_packet(1, 0, 1));
  sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 0x77);
  ASSERT_EQ(nic.sent.size(), 1u);
  EXPECT_GE(nic.sent[0].ready, us(5));  // replay waited for the DMA read
}

TEST(PsPinDevice, CleanupReapsAbandonedMessage) {
  PsPinConfig cfg;
  cfg.cleanup_timeout = us(10);
  Rig rig(cfg);
  rig.dev.on_packet(make_packet(1, 0, 4));  // header of a 4-packet message
  rig.dev.on_packet(make_packet(1, 1, 4));  // one payload... then silence
  rig.sim.run();
  EXPECT_EQ(rig.dev.cleanup_runs(), 1u);
  EXPECT_EQ(rig.dev.live_messages(), 0u);
  EXPECT_EQ(rig.trace->order.back(), "CLEANUP");
  // Cleanup raised a host event.
  ASSERT_FALSE(rig.nic.events.empty());
  EXPECT_EQ(rig.nic.events.back().first, 99u);
}

TEST(PsPinDevice, ActivityPushesCleanupDeadline) {
  PsPinConfig cfg;
  cfg.cleanup_timeout = us(10);
  Rig rig(cfg);
  rig.dev.on_packet(make_packet(1, 0, 3));
  // Keep the message alive with a packet at t=8 us, then abandon it.
  rig.sim.schedule(us(8), [&] { rig.dev.on_packet(make_packet(1, 1, 3)); });
  rig.sim.run();
  EXPECT_EQ(rig.dev.cleanup_runs(), 1u);
  // Reaped at ~18 us (8 + 10), not at 10 us.
  EXPECT_GE(rig.sim.now(), us(18));
}

TEST(PsPinDevice, CompletedMessageNotReaped) {
  PsPinConfig cfg;
  cfg.cleanup_timeout = us(10);
  Rig rig(cfg);
  for (std::uint32_t s = 0; s < 3; ++s) rig.dev.on_packet(make_packet(1, s, 3));
  rig.sim.run();
  EXPECT_EQ(rig.dev.cleanup_runs(), 0u);
}

TEST(PsPinDevice, ZeroTimeoutDisablesCleanup) {
  PsPinConfig cfg;
  cfg.cleanup_timeout = 0;
  Rig rig(cfg);
  rig.dev.on_packet(make_packet(1, 0, 4));
  rig.sim.run();
  EXPECT_EQ(rig.dev.cleanup_runs(), 0u);
  EXPECT_EQ(rig.dev.live_messages(), 1u);  // dangling, as §VII warns
}

TEST(PsPinDevice, UninstallStopsProcessing) {
  Rig rig;
  rig.dev.uninstall();
  rig.dev.on_packet(make_packet(1, 0, 1));
  rig.sim.run();
  EXPECT_TRUE(rig.trace->order.empty());
}

TEST(PsPinDevice, PayloadBytesAccounting) {
  Rig rig;
  for (std::uint32_t s = 0; s < 4; ++s) rig.dev.on_packet(make_packet(1, s, 4, 1000));
  rig.sim.run();
  EXPECT_EQ(rig.dev.payload_bytes_processed(), 4000u);
  EXPECT_GT(rig.dev.last_handler_end(), 0u);
}

TEST(HandlerStatsTest, ResetClears) {
  HandlerStats stats;
  stats.record(HandlerType::kPayload, ns(100), 50);
  EXPECT_EQ(stats.duration_ns(HandlerType::kPayload).count(), 1u);
  stats.reset();
  EXPECT_EQ(stats.duration_ns(HandlerType::kPayload).count(), 0u);
  EXPECT_DOUBLE_EQ(stats.ipc(HandlerType::kPayload), 0.0);
}

}  // namespace
}  // namespace nadfs::pspin
