// Unit tests of the RDMA NIC model: verbs semantics (WRITE/READ/SEND),
// rkey protection, packetization, transport acks, triggered-WQE chains
// (the HyperLoop substrate), and the host-facing hooks.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "rdma/nic.hpp"
#include "sim/simulator.hpp"
#include "storage/target.hpp"

namespace nadfs::rdma {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  storage::Target mem_a{sim};
  storage::Target mem_b{sim};
  storage::Target mem_c{sim};
  Nic a{sim, net, mem_a};
  Nic b{sim, net, mem_b};
  Nic c{sim, net, mem_c};
};

TEST(RdmaNic, WriteLandsAndAcks) {
  Rig rig;
  const auto rkey = rig.b.register_mr(0, 1 * MiB);
  Bytes data(5000, 0x42);
  TimePs done = 0;
  rig.a.post_write(rig.b.id(), 0x100, rkey, data, [&](TimePs at) { done = at; });
  rig.sim.run();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(rig.mem_b.read(0x100, data.size()), data);
}

TEST(RdmaNic, WriteAckArrivesAfterRoundTrip) {
  Rig rig;
  const auto rkey = rig.b.register_mr(0, 1 * MiB);
  TimePs done = 0;
  rig.a.post_write(rig.b.id(), 0, rkey, Bytes(100, 1), [&](TimePs at) { done = at; });
  rig.sim.run();
  // Must cover two network traversals plus PCIe both ways.
  const TimePs one_way = 2 * rig.net.config().link_latency + rig.net.config().switch_latency;
  EXPECT_GT(done, 2 * one_way);
}

TEST(RdmaNic, InvalidRkeyNacksAndDropsData) {
  Rig rig;
  (void)rig.b.register_mr(0, 1024);
  bool nacked = false;
  rig.a.set_control_handler([&](const net::Packet& pkt, TimePs) {
    nacked = pkt.opcode == net::Opcode::kNack;
  });
  rig.a.post_write(rig.b.id(), 0x10000, 12345, Bytes(100, 1), [](TimePs) {});
  rig.sim.run();
  EXPECT_TRUE(nacked);
  EXPECT_EQ(rig.mem_b.bytes_written(), 0u);
}

TEST(RdmaNic, RkeyBoundsChecked) {
  Rig rig;
  const auto rkey = rig.b.register_mr(0x1000, 0x100);
  EXPECT_TRUE(rig.b.rkey_valid(rkey, 0x1000, 0x100));
  EXPECT_FALSE(rig.b.rkey_valid(rkey, 0xFFF, 2));
  EXPECT_FALSE(rig.b.rkey_valid(rkey, 0x10FF, 2));
  EXPECT_FALSE(rig.b.rkey_valid(999, 0x1000, 1));
  EXPECT_TRUE(rig.b.rkey_valid(0, 0xDEAD0000, 64));  // internal bypass key
}

TEST(RdmaNic, ReadReturnsRemoteData) {
  Rig rig;
  Bytes data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 3);
  rig.mem_b.write(0x200, data);
  const auto rkey = rig.b.register_mr(0, 1 * MiB);

  Bytes got;
  rig.a.post_read(rig.b.id(), 0x200, rkey, static_cast<std::uint32_t>(data.size()),
                  [&](Bytes d, TimePs) { got = std::move(d); });
  rig.sim.run();
  EXPECT_EQ(got, data);
}

TEST(RdmaNic, SendDeliversAssembledMessage) {
  Rig rig;
  Bytes msg(7000, 0x7C);
  net::NodeId from = net::kInvalidNode;
  std::uint64_t tag = 0;
  Bytes got;
  rig.b.set_recv_handler([&](net::NodeId src, std::uint64_t t, Bytes data, TimePs) {
    from = src;
    tag = t;
    got = std::move(data);
  });
  rig.a.post_send(rig.b.id(), 0xBEEF, msg);
  rig.sim.run();
  EXPECT_EQ(from, rig.a.id());
  EXPECT_EQ(tag, 0xBEEFu);
  EXPECT_EQ(got, msg);
}

TEST(RdmaNic, PacketizeRespectsMtuAndAdvancesAddresses) {
  Rig rig;
  Bytes data(5000, 1);
  const auto pkts = rig.a.packetize_write(rig.b.id(), 0x800, 3, data, 77, 5);
  ASSERT_EQ(pkts.size(), 3u);  // 2048 + 2048 + 904
  std::size_t off = 0;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    EXPECT_EQ(pkts[i].raddr, 0x800 + off);
    EXPECT_EQ(pkts[i].seq, i);
    EXPECT_EQ(pkts[i].pkt_count, 3u);
    EXPECT_EQ(pkts[i].msg_id, 77u);
    EXPECT_EQ(pkts[i].user_tag, 5u);
    EXPECT_LE(pkts[i].data.size(), rig.net.mtu());
    off += pkts[i].data.size();
  }
  EXPECT_EQ(off, data.size());
}

TEST(RdmaNic, EmptyWriteStillOnePacket) {
  Rig rig;
  const auto pkts = rig.a.packetize_write(rig.b.id(), 0, 0, Bytes{}, 1, 0);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_TRUE(pkts[0].data.empty());
}

TEST(RdmaNic, WriteNotifyFiresOnceWithTotals) {
  Rig rig;
  int notifies = 0;
  std::uint64_t total = 0;
  std::uint64_t raddr = 0;
  rig.b.set_write_notify([&](net::NodeId, std::uint64_t, std::uint64_t, std::uint64_t addr,
                             std::uint64_t len, TimePs) {
    ++notifies;
    raddr = addr;
    total = len;
  });
  rig.a.post_write(rig.b.id(), 0x300, 0, Bytes(6000, 2), [](TimePs) {});
  rig.sim.run();
  EXPECT_EQ(notifies, 1);
  EXPECT_EQ(raddr, 0x300u);
  EXPECT_EQ(total, 6000u);
}

TEST(RdmaNic, TriggeredChainForwardsThroughRing) {
  // a -> b -(trigger)-> c, tail c acks back to a: the HyperLoop mechanism.
  Rig rig;
  Nic::TriggeredWrite t_b;
  t_b.trigger_tag = 42;
  t_b.next_dst = rig.c.id();
  t_b.next_raddr = 0x500;
  rig.b.post_triggered_write(t_b);

  Nic::TriggeredWrite t_c;
  t_c.trigger_tag = 42;
  t_c.ack_to = rig.a.id();
  t_c.ack_tag = 0xACE;
  rig.c.post_triggered_write(t_c);

  bool acked = false;
  rig.a.set_control_handler([&](const net::Packet& pkt, TimePs) {
    acked = pkt.opcode == net::Opcode::kAck && pkt.user_tag == 0xACE;
  });

  Bytes data(3000, 0x99);
  rig.a.post_write(rig.b.id(), 0x500, 0, data, [](TimePs) {}, 42);
  rig.sim.run();

  EXPECT_TRUE(acked);
  EXPECT_EQ(rig.mem_b.read(0x500, data.size()), data);
  EXPECT_EQ(rig.mem_c.read(0x500, data.size()), data);
  EXPECT_EQ(rig.b.armed_triggers(), 0u);  // one-shot
}

TEST(RdmaNic, TriggerOnlyFiresOnMatchingTag) {
  Rig rig;
  Nic::TriggeredWrite trig;
  trig.trigger_tag = 7;
  trig.next_dst = rig.c.id();
  trig.next_raddr = 0;
  rig.b.post_triggered_write(trig);

  rig.a.post_write(rig.b.id(), 0, 0, Bytes(100, 1), [](TimePs) {}, 8);  // wrong tag
  rig.sim.run();
  EXPECT_EQ(rig.b.armed_triggers(), 1u);
  EXPECT_EQ(rig.mem_c.bytes_written(), 0u);
}

TEST(RdmaNic, PostControlReachesControlHandler) {
  Rig rig;
  net::Opcode got = net::Opcode::kSend;
  std::uint64_t tag = 0;
  rig.b.set_control_handler([&](const net::Packet& pkt, TimePs) {
    got = pkt.opcode;
    tag = pkt.user_tag;
  });
  rig.a.post_control(rig.b.id(), net::Opcode::kAck, 0x1234);
  rig.sim.run();
  EXPECT_EQ(got, net::Opcode::kAck);
  EXPECT_EQ(tag, 0x1234u);
}

TEST(RdmaNic, ExpectReadResponseAssemblesStream) {
  Rig rig;
  Bytes got;
  rig.a.expect_read_response(0x55, 5000, [&](Bytes d, TimePs) { got = std::move(d); });
  // Remote side streams three response packets.
  Bytes full(5000);
  for (std::size_t i = 0; i < full.size(); ++i) full[i] = static_cast<std::uint8_t>(i);
  std::size_t off = 0;
  std::uint32_t seq = 0;
  const auto count = static_cast<std::uint32_t>((full.size() + 2047) / 2048);
  while (off < full.size()) {
    net::Packet p;
    p.src = rig.b.id();
    p.dst = rig.a.id();
    p.opcode = net::Opcode::kRdmaReadResp;
    p.seq = seq++;
    p.pkt_count = count;
    p.user_tag = 0x55;
    const std::size_t n = std::min<std::size_t>(2048, full.size() - off);
    p.data.assign(full.begin() + static_cast<std::ptrdiff_t>(off),
                  full.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    rig.net.inject(std::move(p));
  }
  rig.sim.run();
  EXPECT_EQ(got, full);
}

TEST(RdmaNic, ConcurrentWritesFromTwoInitiators) {
  Rig rig;
  const auto rkey = rig.c.register_mr(0, 1 * MiB);
  int done = 0;
  rig.a.post_write(rig.c.id(), 0x0, rkey, Bytes(4000, 0xA1), [&](TimePs) { ++done; });
  rig.b.post_write(rig.c.id(), 0x4000, rkey, Bytes(4000, 0xB2), [&](TimePs) { ++done; });
  rig.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(rig.mem_c.read(0, 1)[0], 0xA1);
  EXPECT_EQ(rig.mem_c.read(0x4000, 1)[0], 0xB2);
}

TEST(RdmaNic, HostEventDelivery) {
  Rig rig;
  std::uint64_t code = 0;
  rig.b.set_host_event_handler([&](std::uint64_t c, std::uint64_t, TimePs) { code = c; });
  rig.b.notify_host(77, 1, rig.sim.now());
  rig.sim.run();
  EXPECT_EQ(code, 77u);
}

}  // namespace
}  // namespace nadfs::rdma
