// Tests of the EC recovery manager: degraded reads, chunk rebuild onto
// spares, metadata repair, and unrecoverable-loss reporting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "services/recovery.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;
using services::RecoveryManager;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

struct Rig {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Client> client;
  std::unique_ptr<RecoveryManager> recovery;
  Bytes data;
  const services::FileLayout* layout = nullptr;

  explicit Rig(unsigned nodes = 7, std::uint8_t k = 3, std::uint8_t m = 2,
               std::size_t size = 50000) {
    cfg.storage_nodes = nodes;
    cluster = std::make_unique<Cluster>(cfg);
    client = std::make_unique<Client>(*cluster, 0);
    recovery = std::make_unique<RecoveryManager>(*cluster, *client);

    FilePolicy policy;
    policy.resiliency = dfs::Resiliency::kErasureCoding;
    policy.ec_k = k;
    policy.ec_m = m;
    layout = &cluster->metadata().create("obj", size, policy);
    const auto cap = cluster->metadata().grant(client->client_id(), *layout, auth::Right::kWrite);
    data = random_bytes(size, 42);
    bool ok = false;
    client->write(*layout, cap, data, [&](bool o, TimePs) { ok = o; });
    cluster->sim().run();
    EXPECT_TRUE(ok);
  }
};

TEST(Recovery, DegradedReadWithNoFailures) {
  Rig rig;
  std::optional<Bytes> got;
  rig.recovery->degraded_read(*rig.layout, {}, [&](std::optional<Bytes> d, TimePs) {
    got = std::move(d);
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, rig.data);
  // No op raced its deadline and no ack went astray on the healthy path.
  EXPECT_EQ(rig.client->tracker().late_acks(), 0u);
  EXPECT_EQ(rig.client->tracker().stray_nacks(), 0u);
  EXPECT_EQ(rig.client->tracker().pending_count(), 0u);
}

TEST(Recovery, DegradedReadSurvivesMaxFailures) {
  Rig rig;
  // Lose m = 2 nodes: one data, one parity.
  const std::set<net::NodeId> failed = {rig.layout->targets[0].node,
                                        rig.layout->parity[1].node};
  std::optional<Bytes> got;
  TimePs at = 0;
  rig.recovery->degraded_read(*rig.layout, failed, [&](std::optional<Bytes> d, TimePs t) {
    got = std::move(d);
    at = t;
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, rig.data);
  EXPECT_GT(at, 0u);
}

TEST(Recovery, DegradedReadReportsDataLoss) {
  Rig rig;
  // Lose m + 1 = 3 chunks: unrecoverable.
  const std::set<net::NodeId> failed = {rig.layout->targets[0].node,
                                        rig.layout->targets[1].node,
                                        rig.layout->parity[0].node};
  bool called = false;
  std::optional<Bytes> got = Bytes{1};
  rig.recovery->degraded_read(*rig.layout, failed, [&](std::optional<Bytes> d, TimePs) {
    called = true;
    got = std::move(d);
  });
  rig.cluster->sim().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST(Recovery, RebuildRestoresFullRedundancy) {
  Rig rig;
  const std::set<net::NodeId> failed = {rig.layout->targets[1].node,
                                        rig.layout->parity[0].node};
  std::optional<services::FileLayout> repaired;
  rig.recovery->rebuild("obj", failed, [&](std::optional<services::FileLayout> l, TimePs) {
    repaired = std::move(l);
  });
  rig.cluster->sim().run();

  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(rig.recovery->chunks_rebuilt(), 2u);
  // Repaired layout avoids the failed nodes entirely.
  for (const auto& coord : repaired->targets) EXPECT_FALSE(failed.count(coord.node));
  for (const auto& coord : repaired->parity) EXPECT_FALSE(failed.count(coord.node));
  // Metadata was updated in place.
  const auto* current = rig.cluster->metadata().lookup("obj");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->targets[1].node, repaired->targets[1].node);

  // The rebuilt chunks are byte-correct: a degraded read pretending the
  // *other* original survivors failed must still reconstruct the data.
  const std::set<net::NodeId> second_wave = {repaired->targets[0].node,
                                             repaired->parity[1].node};
  std::optional<Bytes> got;
  rig.recovery->degraded_read(*current, second_wave, [&](std::optional<Bytes> d, TimePs) {
    got = std::move(d);
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, rig.data);
  EXPECT_EQ(rig.client->tracker().late_acks(), 0u);
  EXPECT_EQ(rig.client->tracker().stray_nacks(), 0u);
  EXPECT_EQ(rig.client->tracker().pending_count(), 0u);
}

TEST(Recovery, RebuildWithNoFailuresIsNoOp) {
  Rig rig;
  std::optional<services::FileLayout> repaired;
  rig.recovery->rebuild("obj", {}, [&](std::optional<services::FileLayout> l, TimePs) {
    repaired = std::move(l);
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(rig.recovery->chunks_rebuilt(), 0u);
  EXPECT_EQ(repaired->targets[0].node, rig.layout->targets[0].node);
}

TEST(Recovery, RebuildFailsWhenUnrecoverable) {
  Rig rig;
  const std::set<net::NodeId> failed = {rig.layout->targets[0].node,
                                        rig.layout->targets[1].node,
                                        rig.layout->targets[2].node};
  bool called = false;
  std::optional<services::FileLayout> repaired;
  rig.recovery->rebuild("obj", failed, [&](std::optional<services::FileLayout> l, TimePs) {
    called = true;
    repaired = std::move(l);
  });
  rig.cluster->sim().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(repaired.has_value());
}

TEST(Recovery, RejectsNonEcObjects) {
  Cluster cluster;
  Client client(cluster, 0);
  RecoveryManager recovery(cluster, client);
  const auto& layout = cluster.metadata().create("plain", 4096, FilePolicy{});
  EXPECT_THROW(recovery.degraded_read(layout, {}, [](std::optional<Bytes>, TimePs) {}),
               std::invalid_argument);
  EXPECT_THROW(recovery.rebuild("plain", {}, [](std::optional<services::FileLayout>, TimePs) {}),
               std::invalid_argument);
  EXPECT_THROW(recovery.rebuild("nope", {}, [](std::optional<services::FileLayout>, TimePs) {}),
               std::invalid_argument);
}

TEST(Recovery, RebuildRs63AfterThreeFailures) {
  Rig rig(/*nodes=*/12, /*k=*/6, /*m=*/3, /*size=*/120000);
  const std::set<net::NodeId> failed = {rig.layout->targets[0].node,
                                        rig.layout->targets[3].node,
                                        rig.layout->parity[2].node};
  std::optional<services::FileLayout> repaired;
  rig.recovery->rebuild("obj", failed, [&](std::optional<services::FileLayout> l, TimePs) {
    repaired = std::move(l);
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(rig.recovery->chunks_rebuilt(), 3u);

  std::optional<Bytes> got;
  rig.recovery->degraded_read(*repaired, failed, [&](std::optional<Bytes> d, TimePs) {
    got = std::move(d);
  });
  rig.cluster->sim().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, rig.data);
}

}  // namespace
}  // namespace nadfs
