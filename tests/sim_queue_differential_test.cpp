// Differential scheduler harness: proves the calendar-queue event core
// (src/sim/calendar_queue.hpp) is order-identical to the PR 1 binary heap
// it replaced.
//
// SchedulerOracle drives sim::CalendarQueue and the retained reference
// heap (sim_reference_heap.hpp) in lockstep through seeded randomized
// adversarial workloads — same-timestamp tie storms, schedule-from-pop
// re-entrancy, horizon-crossing delays, drain/refill cycles across
// timescales — asserting identical (when, seq, payload) at every pop and
// identical sizes at every step. A second, simulator-level harness runs
// the real sim::Simulator against a reference-heap simulator clone and
// compares the now() trajectory, firing order, and executed_events().
//
// Every assertion prints the workload seed so a failure replays with
//   --gtest_filter=<Test> plus the seed hard-coded in kSeeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/simulator.hpp"
#include "sim_reference_heap.hpp"

namespace nadfs::sim {
namespace {

constexpr std::uint64_t kSeeds[] = {0xA11CE, 0xB0B, 0xC0FFEE};

// ------------------------------------------------------- SchedulerOracle

/// Drives the calendar queue and the reference heap in lockstep. Payloads
/// are ids distinct from seq (id = 2*counter + 1) so a payload routed to
/// the wrong entry is caught even where seq happens to match.
class SchedulerOracle {
 public:
  explicit SchedulerOracle(std::uint64_t seed) : seed_(seed) {}

  ~SchedulerOracle() {
    EXPECT_EQ(cal_.size(), ref_.size()) << "final size mismatch, seed=" << seed_;
  }

  /// Enqueue one event `delay` after the current (last-popped) time.
  void push(TimePs delay) {
    const TimePs when = now_ + delay;
    const std::uint64_t id = 2 * next_id_++ + 1;
    const std::uint64_t s1 = cal_.push(when, id);
    const std::uint64_t s2 = ref_.push(when, id);
    EXPECT_EQ(s1, s2) << "seq assignment diverged, seed=" << seed_;
    ++ops_;
  }

  /// Pop from both queues and assert identical (when, seq, payload).
  /// Returns false once a divergence has been observed (callers bail out).
  bool pop() {
    if (dead_) return false;
    if (cal_.empty() || ref_.empty()) {
      if (cal_.empty() != ref_.empty()) fail("one queue empty, the other not");
      return false;
    }
    const auto* cp = cal_.peek();
    const auto* rp = ref_.peek();
    if (cp->when != rp->when || cp->seq != rp->seq || cp->payload != rp->payload) {
      fail("peek mismatch");
      return false;
    }
    auto ce = cal_.pop();
    auto re = ref_.pop();
    if (ce.when != re.when || ce.seq != re.seq || ce.payload != re.payload) {
      ADD_FAILURE() << "pop mismatch at op " << ops_ << ", seed=" << seed_ << ": calendar ("
                    << ce.when << "," << ce.seq << "," << ce.payload << ") vs heap (" << re.when
                    << "," << re.seq << "," << re.payload << ")";
      dead_ = true;
      return false;
    }
    if (cal_.size() != ref_.size()) {
      fail("size mismatch after pop");
      return false;
    }
    now_ = ce.when;
    ++ops_;
    return true;
  }

  void drain() {
    while (!done() && pop()) {
    }
  }

  bool done() const { return dead_ || (cal_.empty() && ref_.empty()); }
  bool diverged() const { return dead_; }
  TimePs now() const { return now_; }
  std::size_t pending() const { return cal_.size(); }
  std::uint64_t ops() const { return ops_; }
  const CalendarQueue<std::uint64_t>& calendar() const { return cal_; }

 private:
  void fail(const char* what) {
    ADD_FAILURE() << what << " at op " << ops_ << ", seed=" << seed_;
    dead_ = true;
  }

  std::uint64_t seed_;
  TimePs now_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t ops_ = 0;
  bool dead_ = false;
  CalendarQueue<std::uint64_t> cal_;
  ReferenceEventHeap<std::uint64_t> ref_;
};

/// Runs `workload(oracle, rng)` for every seed, then drains and checks
/// the ≥10k-op floor the acceptance criteria set.
template <typename Workload>
void run_differential(Workload workload) {
  for (const std::uint64_t seed : kSeeds) {
    SchedulerOracle oracle(seed);
    Rng rng(seed);
    workload(oracle, rng);
    oracle.drain();
    EXPECT_FALSE(oracle.diverged()) << "seed=" << seed;
    EXPECT_GE(oracle.ops(), 10000u) << "workload too small to be meaningful, seed=" << seed;
  }
}

// ------------------------------------------------- adversarial workloads

TEST(SimQueueDifferential, UniformWideRange) {
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 8000; ++i) q.push(rng.next_below(TimePs{1} << 30));
  });
}

TEST(SimQueueDifferential, SameTimestampTieStorm) {
  // Every event of a round lands on one timestamp: a single bucket soaks
  // the whole population and must still drain in exact seq order.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int round = 0; round < 3; ++round) {
      const TimePs at = rng.next_range(1, ns(50));
      for (int i = 0; i < 4000; ++i) q.push(at);
      q.drain();
    }
  });
}

TEST(SimQueueDifferential, FewDistinctTimesHeavyTies) {
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 12000 && !q.diverged(); ++i) {
      if (rng.next_below(10) < 6 || q.pending() == 0) {
        q.push(rng.next_below(8) * ns(1));
      } else {
        q.pop();
      }
    }
  });
}

TEST(SimQueueDifferential, BurstyClusters) {
  // The paper's goodput shape: sparse cluster bases, 48-event bursts
  // packed within ~128 ps of each base.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int c = 0; c < 200; ++c) {
      const TimePs base = rng.next_below(ms(1));
      for (int i = 0; i < 48; ++i) q.push(base + rng.next_below(128));
      for (int i = 0; i < 24; ++i) q.pop();
    }
  });
}

TEST(SimQueueDifferential, ReentrantScheduleFromPop) {
  // Models schedule-from-inside-callback: every pop may push follow-ups
  // at the just-popped time (delay 0 → into the live, partially drained
  // bucket) or shortly after.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 2000; ++i) q.push(rng.next_below(us(1)));
    int push_budget = 10000;
    while (!q.done()) {
      if (!q.pop()) break;
      const std::uint64_t r = rng.next();
      if (push_budget > 0 && (r & 1) != 0) {
        const int kids = 1 + static_cast<int>((r >> 1) & 1);
        for (int k = 0; k < kids && push_budget > 0; --push_budget, ++k) {
          q.push((r >> (2 + k)) % 4 == 0 ? 0 : rng.next_below(ns(100)));
        }
      }
    }
  });
}

TEST(SimQueueDifferential, HorizonCrossingDelays) {
  // 30% of delays land far past the calendar window (overflow heap);
  // drains force cursor jumps and overflow→wheel migration.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 12000 && !q.diverged(); ++i) {
      const std::uint64_t r = rng.next_below(10);
      if (r < 3) {
        q.push(rng.next_below(TimePs{1} << 50));
      } else if (r < 7 || q.pending() == 0) {
        q.push(rng.next_below(4096));
      } else {
        q.pop();
      }
    }
  });
}

TEST(SimQueueDifferential, DrainRefillAcrossTimescales) {
  // Full drain/refill cycles with the delay scale growing 64x per cycle:
  // exercises shrink-to-minimum and bucket-width re-adaptation.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int cycle = 0; cycle < 6; ++cycle) {
      const TimePs scale = TimePs{1} << (4 + 6 * cycle);
      for (int i = 0; i < 2000; ++i) q.push(rng.next_below(scale));
      q.drain();
    }
  });
}

TEST(SimQueueDifferential, MonotoneSteadyStateChain) {
  // FIFO-shaped steady state (packet serialization cadence): one push at
  // now + 41 ns per pop, small constant backlog.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 64; ++i) q.push(rng.next_below(ns(41)));
    for (int i = 0; i < 10000 && !q.done(); ++i) {
      q.push(ns(41) + rng.next_below(16));
      q.pop();
    }
  });
}

TEST(SimQueueDifferential, ZeroDelayStormDuringDrain) {
  // Pushes at exactly the just-popped timestamp while its bucket is being
  // consumed: the ordered-insert path of the live bucket.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 4000; ++i) q.push(rng.next_below(us(1)));
    int push_budget = 8000;
    int popped = 0;
    while (!q.done()) {
      if (!q.pop()) break;
      if (push_budget > 0 && ++popped % 4 == 0) {
        q.push(0);
        q.push(0);
        push_budget -= 2;
      }
    }
  });
}

TEST(SimQueueDifferential, GeometricScaleMix) {
  // Delays spanning 45 binary orders of magnitude with random push/pop
  // mix: hammers width adaptation and the wheel/overflow boundary in
  // both directions.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 12000 && !q.diverged(); ++i) {
      if (rng.next_below(2) == 0 || q.pending() == 0) {
        const unsigned mag = static_cast<unsigned>(rng.next_below(45));
        q.push((TimePs{1} << mag) + rng.next_below((TimePs{1} << mag) + 1));
      } else {
        q.pop();
      }
    }
  });
}

TEST(SimQueueDifferential, RandomAdversarialMix) {
  // Everything at once: tie bursts, zero delays, horizon jumps, deep
  // drains — the closest to a fuzzer this harness gets.
  run_differential([](SchedulerOracle& q, Rng& rng) {
    for (int i = 0; i < 6000 && !q.diverged(); ++i) {
      switch (rng.next_below(8)) {
        case 0: {  // tie burst
          const TimePs at = rng.next_below(us(10));
          for (int k = 0; k < 16; ++k) q.push(at);
          break;
        }
        case 1:  // zero delay
          q.push(0);
          break;
        case 2:  // far future
          q.push(rng.next_below(TimePs{1} << 52));
          break;
        case 3: {  // deep drain
          for (int k = 0; k < 64 && q.pending() > 0; ++k) q.pop();
          break;
        }
        default:
          if (rng.next_below(3) == 0 && q.pending() > 0) {
            q.pop();
          } else {
            q.push(rng.next_below(us(1)));
          }
      }
    }
  });
}

// ---------------------------------------- simulator-level differential

/// Faithful clone of the PR 1 Simulator, over the retained reference heap:
/// same schedule/step/run semantics, same past-scheduling error.
class RefSimulator {
 public:
  TimePs now() const { return now_; }
  void schedule(TimePs delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }
  void schedule_at(TimePs when, EventFn fn) {
    if (when < now_) {
      throw std::logic_error("RefSimulator::schedule_at: event scheduled in the past");
    }
    q_.push(when, std::move(fn));
  }
  bool step() {
    if (q_.empty()) return false;
    auto ev = q_.pop();
    now_ = ev.when;
    ++executed_;
    ev.payload();
    return true;
  }
  std::size_t pending_events() const { return q_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  ReferenceEventHeap<EventFn> q_;
};

struct SimTrace {
  std::vector<std::pair<TimePs, int>> fired;  // (now at firing, event id)
  std::vector<TimePs> now_after_step;
  std::uint64_t executed = 0;
};

/// Re-entrant workload: callbacks draw from the (deterministic) rng to
/// spawn 0–2 children each, a quarter of them at delay 0 (same-time
/// ties scheduled from inside the running event).
template <typename SimT>
class ReentrantDriver {
 public:
  explicit ReentrantDriver(std::uint64_t seed) : rng_(seed) {}

  SimTrace run() {
    for (int i = 0; i < 100; ++i) {
      --budget_;
      schedule_one(rng_.next_below(us(1)));
    }
    while (sim_.step()) {
      trace_.now_after_step.push_back(sim_.now());
    }
    trace_.executed = sim_.executed_events();
    return std::move(trace_);
  }

 private:
  void schedule_one(TimePs delay) {
    const int id = next_id_++;
    sim_.schedule(delay, [this, id] {
      trace_.fired.emplace_back(sim_.now(), id);
      const std::uint64_t r = rng_.next();
      const int kids = static_cast<int>(r % 4);  // avg 1.5: supercritical, budget-capped
      for (int k = 0; k < kids && budget_ > 0; ++k) {
        --budget_;
        const std::uint64_t d = rng_.next();
        schedule_one(d % 4 == 0 ? 0 : d % us(2));
      }
    });
  }

  SimT sim_;
  Rng rng_;
  int budget_ = 4000;
  int next_id_ = 0;
  SimTrace trace_;
};

TEST(SimQueueDifferential, SimulatorMatchesReferenceHeapSimulator) {
  for (const std::uint64_t seed : kSeeds) {
    SimTrace cal = ReentrantDriver<Simulator>(seed).run();
    SimTrace ref = ReentrantDriver<RefSimulator>(seed).run();
    EXPECT_EQ(cal.executed, ref.executed) << "seed=" << seed;
    EXPECT_GE(cal.executed, 3000u) << "seed=" << seed;
    ASSERT_EQ(cal.fired.size(), ref.fired.size()) << "seed=" << seed;
    EXPECT_EQ(cal.fired, ref.fired) << "firing order diverged, seed=" << seed;
    EXPECT_EQ(cal.now_after_step, ref.now_after_step)
        << "now() trajectory diverged, seed=" << seed;
  }
}

// ------------------------------------------- calendar-queue unit checks

TEST(CalendarQueue, GrowsAndAdaptsBucketWidthUnderLoad) {
  CalendarQueue<int> q;
  const std::size_t initial_buckets = q.bucket_count();
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    q.push(rng.next_below(ms(1)), i);
  }
  // Pushes are staged; sizing decisions happen when consumption begins.
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_GT(q.bucket_count(), initial_buckets);
  EXPECT_GT(q.rebuilds(), 0u);
  // ms-range spread over 50k events: mean gap ~20 ns, so the width must
  // have adapted well above the 1 ns default.
  EXPECT_GT(q.bucket_shift(), 10u);
}

TEST(CalendarQueue, FarFutureLandsInOverflowAndMigratesBack) {
  CalendarQueue<int> q;
  q.push(ns(1), 0);
  q.push(ms(1000), 1);  // far beyond any 16-bucket window
  ASSERT_NE(q.peek(), nullptr);  // integrates the staged pushes
  EXPECT_EQ(q.overflow_size(), 1u);
  EXPECT_EQ(q.pop().payload, 0);
  EXPECT_EQ(q.pop().payload, 1);  // cursor jump + migration
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.overflow_size(), 0u);
}

TEST(CalendarQueue, ShrinksAfterDrain) {
  CalendarQueue<int> q;
  for (int i = 0; i < 20000; ++i) q.push(static_cast<TimePs>(i) * ns(1), i);
  ASSERT_NE(q.peek(), nullptr);  // integrates the staged pushes
  const std::size_t grown = q.bucket_count();
  EXPECT_GT(grown, CalendarQueue<int>::kMinBuckets);
  for (int i = 0; i < 20000; ++i) q.pop();
  EXPECT_LT(q.bucket_count(), grown);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PeekIsStableAndMatchesPop) {
  CalendarQueue<int> q;
  q.push(ns(7), 1);
  q.push(ns(3), 2);
  q.push(ns(3), 3);
  const auto* p = q.peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->when, ns(3));
  EXPECT_EQ(p->payload, 2);  // earliest time, lowest seq
  const auto e = q.pop();
  EXPECT_EQ(e.when, ns(3));
  EXPECT_EQ(e.payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.peek(), nullptr);
}

}  // namespace
}  // namespace nadfs::sim
