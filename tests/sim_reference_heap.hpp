// Reference scheduler oracle: a minimal retained copy of the PR 1 binary
// min-heap event core (commit bf5d7b8, src/sim/simulator.cpp before the
// calendar-queue swap). The differential harness in
// sim_queue_differential_test.cpp runs it in lockstep with
// sim::CalendarQueue and asserts identical pop order; the event-queue
// goodput bench (bench/micro_primitives.cpp) uses it as the speedup
// baseline. Do not "improve" this file — its value is being the old,
// trusted implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace nadfs::sim {

template <typename Payload>
class ReferenceEventHeap {
 public:
  struct Entry {
    TimePs when;
    std::uint64_t seq;
    Payload payload;
  };

  /// Enqueue `payload` at absolute time `when`; returns the assigned
  /// sequence number (same contract as CalendarQueue::push).
  std::uint64_t push(TimePs when, Payload payload) {
    const std::uint64_t seq = next_seq_++;
    Entry ev{when, seq, std::move(payload)};
    heap_.emplace_back();  // placeholder hole; sift_up fills it
    sift_up(heap_.size() - 1, std::move(ev));
    return seq;
  }

  const Entry* peek() const { return heap_.empty() ? nullptr : &heap_.front(); }

  /// Remove and return the top entry. Precondition: !empty().
  Entry pop() {
    Entry top = std::move(heap_.front());
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      // Sift `last` down from the root through a hole, moving the smaller
      // child up each level — one move per level instead of a full swap.
      const std::size_t n = heap_.size();
      std::size_t hole = 0;
      std::size_t child = 1;
      while (child < n) {
        if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
        if (!before(heap_[child], last)) break;
        heap_[hole] = std::move(heap_[child]);
        hole = child;
        child = 2 * hole + 1;
      }
      heap_[hole] = std::move(last);
    }
    return top;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  /// Min-heap order: earliest time first, scheduling order among ties.
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t hole, Entry ev) {
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!before(ev, heap_[parent])) break;
      heap_[hole] = std::move(heap_[parent]);
      hole = parent;
    }
    heap_[hole] = std::move(ev);
  }

  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace nadfs::sim
