#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace nadfs::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(ns(30), [&] { order.push_back(3); });
  s.schedule(ns(10), [&] { order.push_back(1); });
  s.schedule(ns(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), ns(30));
}

TEST(Simulator, TieBreaksInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(ns(5), [&] { order.push_back(1); });
  s.schedule(ns(5), [&] { order.push_back(2); });
  s.schedule(ns(5), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int hits = 0;
  s.schedule(ns(1), [&] {
    ++hits;
    s.schedule(ns(1), [&] {
      ++hits;
      s.schedule(ns(1), [&] { ++hits; });
    });
  });
  s.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(s.now(), ns(3));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator s;
  s.schedule(ns(10), [&] { EXPECT_THROW(s.schedule_at(ns(5), [] {}), std::logic_error); });
  s.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int hits = 0;
  s.schedule(ns(10), [&] { ++hits; });
  s.schedule(ns(20), [&] { ++hits; });
  s.schedule(ns(30), [&] { ++hits; });
  s.run_until(ns(20));
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), ns(20));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(hits, 3);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator s;
  s.schedule(0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutedEventCount) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(ns(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

// ------------------------------------------------------------ FifoServer

TEST(FifoServer, SerializesBackToBack) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));  // 20 ps/B
  const auto w1 = srv.reserve(1000);
  const auto w2 = srv.reserve(1000);
  EXPECT_EQ(w1.start, 0u);
  EXPECT_EQ(w1.end, 20000u);
  EXPECT_EQ(w2.start, w1.end);
  EXPECT_EQ(w2.end, 40000u);
}

TEST(FifoServer, HonorsEarliest) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  const auto w = srv.reserve(100, ns(10));
  EXPECT_EQ(w.start, ns(10));
}

TEST(FifoServer, GapThenBusy) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  const auto w1 = srv.reserve(1000, ns(100));
  const auto w2 = srv.reserve(1000, ns(50));  // wants earlier but queue is ahead
  EXPECT_EQ(w2.start, w1.end);
}

TEST(FifoServer, ReserveTime) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(1.0));
  const auto w = srv.reserve_time(ns(7));
  EXPECT_EQ(w.end - w.start, ns(7));
}

TEST(FifoServer, TracksTotalBytes) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  srv.reserve(10);
  srv.reserve(20);
  EXPECT_EQ(srv.total_bytes(), 30u);
}

// ------------------------------------------------------------ CreditPool

TEST(CreditPool, GrantsImmediatelyWhenAvailable) {
  Simulator s;
  CreditPool pool(s, 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(CreditPool, QueuesWhenExhausted) {
  Simulator s;
  CreditPool pool(s, 1);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  s.run();
  EXPECT_EQ(granted, 2);
}

TEST(CreditPool, ReleaseWithoutWaitersRestoresCredit) {
  Simulator s;
  CreditPool pool(s, 1);
  pool.acquire([] {});
  pool.release();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(CreditPool, FifoGrantOrder) {
  Simulator s;
  CreditPool pool(s, 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  pool.release();
  s.run();
  pool.release();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace nadfs::sim
