#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace nadfs::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(ns(30), [&] { order.push_back(3); });
  s.schedule(ns(10), [&] { order.push_back(1); });
  s.schedule(ns(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), ns(30));
}

TEST(Simulator, TieBreaksInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(ns(5), [&] { order.push_back(1); });
  s.schedule(ns(5), [&] { order.push_back(2); });
  s.schedule(ns(5), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TieBreaksAcrossInterleavedTimes) {
  // Determinism regression for the heap rewrite: same-time events fire in
  // scheduling order even when insertions interleave many distinct times
  // in non-monotonic order.
  Simulator s;
  std::vector<std::pair<TimePs, int>> fired;
  int id = 0;
  for (const TimePs t : {ns(30), ns(10), ns(30), ns(20), ns(10), ns(30), ns(20), ns(10)}) {
    const int my_id = id++;
    s.schedule(t, [&fired, t, my_id] { fired.emplace_back(t, my_id); });
  }
  s.run();
  const std::vector<std::pair<TimePs, int>> expect = {
      {ns(10), 1}, {ns(10), 4}, {ns(10), 7}, {ns(20), 3},
      {ns(20), 6}, {ns(30), 0}, {ns(30), 2}, {ns(30), 5}};
  EXPECT_EQ(fired, expect);
}

TEST(Simulator, TiesScheduledFromCallbacksRunAfterEarlierTies) {
  // An event scheduled *during* execution for the current time runs after
  // all previously scheduled events at that time (its seq is larger).
  Simulator s;
  std::vector<int> order;
  s.schedule(ns(5), [&] {
    order.push_back(0);
    s.schedule(0, [&] { order.push_back(3); });
  });
  s.schedule(ns(5), [&] { order.push_back(1); });
  s.schedule(ns(5), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, RandomizedScheduleExecutesInTimeThenSeqOrder) {
  // Pseudo-random times, verified against a reference sort on
  // (time, insertion index) — the exact contract components rely on.
  Simulator s;
  std::vector<std::pair<TimePs, int>> fired;
  std::vector<std::pair<TimePs, int>> expect;
  std::uint32_t lcg = 12345;
  for (int i = 0; i < 500; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const auto t = static_cast<TimePs>(lcg % 64);  // few distinct times: many ties
    expect.emplace_back(t, i);
    s.schedule(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  s.run();
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(s.executed_events(), 500u);
}

TEST(EventFn, LargeCaptureFallsBackToHeap) {
  // Captures beyond the inline buffer must still work (heap fallback).
  Simulator s;
  std::array<std::uint64_t, 16> big{};  // 128 B > EventFn::kInlineBytes
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i + 1;
  std::uint64_t sum = 0;
  s.schedule(ns(1), [big, &sum] {
    for (const auto v : big) sum += v;
  });
  s.run();
  EXPECT_EQ(sum, 136u);
}

TEST(EventFn, MoveOnlyCaptureWorksInline) {
  Simulator s;
  auto p = std::make_unique<int>(7);
  int got = 0;
  s.schedule(ns(1), [p = std::move(p), &got] { got = *p; });
  s.run();
  EXPECT_EQ(got, 7);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int hits = 0;
  s.schedule(ns(1), [&] {
    ++hits;
    s.schedule(ns(1), [&] {
      ++hits;
      s.schedule(ns(1), [&] { ++hits; });
    });
  });
  s.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(s.now(), ns(3));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator s;
  s.schedule(ns(10), [&] { EXPECT_THROW(s.schedule_at(ns(5), [] {}), std::logic_error); });
  s.run();
}

TEST(Simulator, RejectsPastEventsFromTopLevel) {
  // Scheduling in the past is a hard error outside callbacks too, and the
  // failed call must leave the queue untouched.
  Simulator s;
  s.schedule(ns(10), [] {});
  s.run();
  ASSERT_EQ(s.now(), ns(10));
  EXPECT_THROW(s.schedule_at(ns(9), [] {}), std::logic_error);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 1u);
  // The simulator is still fully usable after the rejected call.
  int hits = 0;
  s.schedule_at(ns(10), [&] { ++hits; });  // exactly "now" is allowed
  s.schedule_at(ns(20), [&] { ++hits; });
  s.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), ns(20));
}

TEST(Simulator, RejectsPastEventsAfterRunUntilAdvancesClock) {
  // run_until moves now() forward even with no event at the deadline;
  // an event before that synthetic now must still be rejected.
  Simulator s;
  s.run_until(ns(100));
  EXPECT_EQ(s.now(), ns(100));
  EXPECT_THROW(s.schedule_at(ns(99), [] {}), std::logic_error);
  EXPECT_THROW(s.schedule(TimePs{0} - ns(1), [] {}), std::logic_error);  // delay underflow wraps
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int hits = 0;
  s.schedule(ns(10), [&] { ++hits; });
  s.schedule(ns(20), [&] { ++hits; });
  s.schedule(ns(30), [&] { ++hits; });
  s.run_until(ns(20));
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), ns(20));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(hits, 3);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator s;
  s.schedule(0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutedEventCount) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(ns(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

// ------------------------------------------------------------ FifoServer

TEST(FifoServer, SerializesBackToBack) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));  // 20 ps/B
  const auto w1 = srv.reserve(1000);
  const auto w2 = srv.reserve(1000);
  EXPECT_EQ(w1.start, 0u);
  EXPECT_EQ(w1.end, 20000u);
  EXPECT_EQ(w2.start, w1.end);
  EXPECT_EQ(w2.end, 40000u);
}

TEST(FifoServer, HonorsEarliest) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  const auto w = srv.reserve(100, ns(10));
  EXPECT_EQ(w.start, ns(10));
}

TEST(FifoServer, GapThenBusy) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  const auto w1 = srv.reserve(1000, ns(100));
  const auto w2 = srv.reserve(1000, ns(50));  // wants earlier but queue is ahead
  EXPECT_EQ(w2.start, w1.end);
}

TEST(FifoServer, ReserveTime) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(1.0));
  const auto w = srv.reserve_time(ns(7));
  EXPECT_EQ(w.end - w.start, ns(7));
}

TEST(FifoServer, TracksTotalBytes) {
  Simulator s;
  FifoServer srv(s, Bandwidth::from_gbps(400.0));
  srv.reserve(10);
  srv.reserve(20);
  EXPECT_EQ(srv.total_bytes(), 30u);
}

// ------------------------------------------------------------ CreditPool

TEST(CreditPool, GrantsImmediatelyWhenAvailable) {
  Simulator s;
  CreditPool pool(s, 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(CreditPool, QueuesWhenExhausted) {
  Simulator s;
  CreditPool pool(s, 1);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  s.run();
  EXPECT_EQ(granted, 2);
}

TEST(CreditPool, ReleaseWithoutWaitersRestoresCredit) {
  Simulator s;
  CreditPool pool(s, 1);
  pool.acquire([] {});
  pool.release();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(CreditPool, FifoGrantOrder) {
  Simulator s;
  CreditPool pool(s, 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  pool.release();
  s.run();
  pool.release();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace nadfs::sim
