// Unit tests of the HandlerCtx record-then-replay contract: cost charging,
// command cycle offsets, and functional storage reads.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/units.hpp"
#include "spin/handler.hpp"

namespace nadfs::spin {
namespace {

TEST(HandlerCtx, ChargesAccumulate) {
  HandlerCtx ctx(1, 0, 0);
  ctx.charge(10, 20);
  ctx.charge(5, 7);
  ctx.charge_per_byte(100, 3, 4);
  EXPECT_EQ(ctx.instr(), 10u + 5 + 300);
  EXPECT_EQ(ctx.cycles(), 20u + 7 + 400);
}

TEST(HandlerCtx, CommandsRecordIssueOffsets) {
  HandlerCtx ctx(1, 0, 0);
  ctx.charge(0, 100);
  net::Packet p;
  p.dst = 2;
  ctx.send(std::move(p));           // at cycle 100
  ctx.charge(0, 50);
  ctx.dma_to_storage(0x10, {1, 2}); // at cycle 150
  ctx.charge(0, 25);
  ctx.storage_fence();              // at cycle 175
  ctx.notify_host(7, 8);            // at cycle 175

  const auto& cmds = ctx.commands();
  ASSERT_EQ(cmds.size(), 4u);
  EXPECT_EQ(cmds[0].kind, HandlerCtx::Cmd::Kind::kSend);
  EXPECT_EQ(cmds[0].cycle_offset, 100u);
  EXPECT_EQ(cmds[1].kind, HandlerCtx::Cmd::Kind::kDma);
  EXPECT_EQ(cmds[1].cycle_offset, 150u);
  EXPECT_EQ(cmds[1].addr, 0x10u);
  EXPECT_EQ(cmds[1].data, (Bytes{1, 2}));
  EXPECT_EQ(cmds[2].kind, HandlerCtx::Cmd::Kind::kFence);
  EXPECT_EQ(cmds[2].cycle_offset, 175u);
  EXPECT_EQ(cmds[3].kind, HandlerCtx::Cmd::Kind::kNotify);
  EXPECT_EQ(cmds[3].code, 7u);
  EXPECT_EQ(cmds[3].arg, 8u);
}

TEST(HandlerCtx, ReadStorageUsesInstalledReader) {
  HandlerCtx ctx(1, 0, 0);
  ctx.set_storage_reader([](std::uint64_t addr, std::size_t len) {
    Bytes out(len);
    for (std::size_t i = 0; i < len; ++i) out[i] = static_cast<std::uint8_t>(addr + i);
    return out;
  });
  const auto got = ctx.read_storage(5, 3);
  EXPECT_EQ(got, (Bytes{5, 6, 7}));
  ASSERT_EQ(ctx.commands().size(), 1u);
  EXPECT_EQ(ctx.commands()[0].kind, HandlerCtx::Cmd::Kind::kDmaRead);
  EXPECT_EQ(ctx.commands()[0].addr, 5u);
  EXPECT_EQ(ctx.commands()[0].len, 3u);
}

TEST(HandlerCtx, ReadStorageWithoutReaderReturnsZeros) {
  HandlerCtx ctx(1, 0, 0);
  EXPECT_EQ(ctx.read_storage(0, 4), (Bytes{0, 0, 0, 0}));
}

TEST(HandlerCtx, SendFromStorageFillsPayloadFunctionally) {
  HandlerCtx ctx(1, 0, 0);
  ctx.set_storage_reader([](std::uint64_t, std::size_t len) { return Bytes(len, 0xEE); });
  net::Packet p;
  p.dst = 3;
  ctx.send_from_storage(std::move(p), 0x100, 5);
  ASSERT_EQ(ctx.commands().size(), 1u);
  const auto& cmd = ctx.commands()[0];
  EXPECT_EQ(cmd.kind, HandlerCtx::Cmd::Kind::kSendFromStorage);
  EXPECT_EQ(cmd.pkt.data, Bytes(5, 0xEE));
  EXPECT_EQ(cmd.addr, 0x100u);
  EXPECT_EQ(cmd.len, 5u);
}

TEST(HandlerCtx, EnvironmentAccessors) {
  HandlerCtx ctx(9, nadfs::us(3), 17);
  EXPECT_EQ(ctx.self(), 9u);
  EXPECT_EQ(ctx.now_ps(), nadfs::us(3));
  EXPECT_EQ(ctx.flow_slot(), 17u);
}

TEST(HandlerTypes, Names) {
  EXPECT_STREQ(handler_type_name(HandlerType::kHeader), "HH");
  EXPECT_STREQ(handler_type_name(HandlerType::kPayload), "PH");
  EXPECT_STREQ(handler_type_name(HandlerType::kCompletion), "CH");
}

TEST(MessageKeyTest, EqualityAndHash) {
  const MessageKey a{1, 100};
  const MessageKey b{1, 100};
  const MessageKey c{2, 100};
  const MessageKey d{1, 101};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  MessageKeyHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));
}

TEST(Log, LevelGating) {
  const auto prev = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold calls are no-ops (no crash, no output assertions here).
  log(LogLevel::kDebug, "suppressed %d", 1);
  log(LogLevel::kError, "emitted %s", "x");
  set_log_level(prev);
}

TEST(Log, FormatHelper) {
  EXPECT_EQ(detail::log_format("a=%d b=%s", 7, "z"), "a=7 b=z");
  EXPECT_EQ(detail::log_format("plain"), "plain");
}

}  // namespace
}  // namespace nadfs::spin
