// Tests of the §III-C overload-steering path: requests bypass a saturated
// PsPIN and are handled by the host-side DFS service, with identical
// policy semantics and composable forwarding between the two planes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ec/reed_solomon.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"
#include "services/host_dfs.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;
using services::HostDfsService;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

TEST(Steering, OverloadedPspinHandsOffToHostService) {
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  cfg.clients = 2;
  Cluster cluster(cfg);
  auto& node = cluster.storage_node(0);
  HostDfsService host(node, cfg.dfs);
  node.nic().set_pspin_backlog_limit(1);  // one live message max on the NIC

  Client c0(cluster, 0), c1(cluster, 1);
  const auto& la = cluster.metadata().create("a", 1 * MiB, FilePolicy{});
  const auto& lb = cluster.metadata().create("b", 1 * MiB, FilePolicy{});
  const auto capa = cluster.metadata().grant(c0.client_id(), la, auth::Right::kWrite);
  const auto capb = cluster.metadata().grant(c1.client_id(), lb, auth::Right::kWrite);

  const Bytes da = random_bytes(512 * KiB, 1);
  const Bytes db = random_bytes(512 * KiB, 2);
  int oks = 0;
  c0.write(la, capa, da, [&](bool ok, TimePs) { oks += ok; });
  c1.write(lb, capb, db, [&](bool ok, TimePs) { oks += ok; });
  cluster.sim().run();

  EXPECT_EQ(oks, 2);  // both writes succeed despite the saturated NIC
  EXPECT_EQ(node.nic().steered_to_host(), 1u);
  EXPECT_EQ(host.requests_handled(), 1u);
  EXPECT_EQ(node.target().read(la.targets[0].addr, da.size()), da);
  EXPECT_EQ(node.target().read(lb.targets[0].addr, db.size()), db);
}

TEST(Steering, NoHandlerMeansNoSteering) {
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  cfg.clients = 2;
  Cluster cluster(cfg);
  auto& node = cluster.storage_node(0);
  node.nic().set_pspin_backlog_limit(1);  // limit set but no host service

  Client c0(cluster, 0), c1(cluster, 1);
  const auto& la = cluster.metadata().create("a", 1 * MiB, FilePolicy{});
  const auto& lb = cluster.metadata().create("b", 1 * MiB, FilePolicy{});
  const auto capa = cluster.metadata().grant(c0.client_id(), la, auth::Right::kWrite);
  const auto capb = cluster.metadata().grant(c1.client_id(), lb, auth::Right::kWrite);
  int oks = 0;
  c0.write(la, capa, random_bytes(256 * KiB, 3), [&](bool ok, TimePs) { oks += ok; });
  c1.write(lb, capb, random_bytes(256 * KiB, 4), [&](bool ok, TimePs) { oks += ok; });
  cluster.sim().run();
  EXPECT_EQ(node.nic().steered_to_host(), 0u);
  EXPECT_EQ(oks, 2);  // PsPIN keeps both (limit inactive without a handler)
}

TEST(Steering, HostServiceEnforcesValidation) {
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  Cluster cluster(cfg);
  auto& node = cluster.storage_node(0);
  node.uninstall_dfs();  // pure CPU-mode DFS node
  HostDfsService host(node, cfg.dfs);

  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("a", 64 * KiB, FilePolicy{});
  auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  cap.mac ^= 1;

  bool done = false, ok = true;
  client.write(layout, cap, random_bytes(16 * KiB, 5), [&](bool o, TimePs) {
    done = true;
    ok = o;
  });
  cluster.sim().run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(host.validation_failures(), 1u);
  EXPECT_EQ(node.target().bytes_written(), 0u);
}

TEST(Steering, CpuModeNodeServesWritesAndReads) {
  ClusterConfig cfg;
  cfg.storage_nodes = 1;
  Cluster cluster(cfg);
  auto& node = cluster.storage_node(0);
  node.uninstall_dfs();
  HostDfsService host(node, cfg.dfs);

  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("a", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  const Bytes data = random_bytes(30000, 6);
  bool wrote = false;
  client.write(layout, cap, data, [&](bool ok, TimePs) { wrote = ok; });
  cluster.sim().run();
  ASSERT_TRUE(wrote);

  Bytes got;
  client.read(layout, cap, static_cast<std::uint32_t>(data.size()),
              [&](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  EXPECT_EQ(got, data);
  EXPECT_EQ(host.requests_handled(), 2u);
}

TEST(Steering, HostForwardedReplicationLandsEverywhere) {
  // Primary runs in CPU mode; replicas keep their PsPIN: the host-forwarded
  // hops are regular DFS writes the replicas process on their NICs.
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  auto& primary = cluster.storage_node(0);
  primary.uninstall_dfs();
  HostDfsService host(primary, cfg.dfs);

  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kRing;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("a", 128 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(100000, 7);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().read(coord.addr, data.size()), data)
        << "node " << coord.node;
  }
  EXPECT_EQ(host.requests_handled(), 1u);  // replicas handled on their NICs
}

TEST(Steering, CpuModeErasureCodingProducesCorrectParity) {
  // All nodes in CPU mode: data nodes encode on the host, parity nodes
  // aggregate on the host — still byte-identical to the reference encode.
  ClusterConfig cfg;
  cfg.storage_nodes = 5;
  Cluster cluster(cfg);
  std::vector<std::unique_ptr<HostDfsService>> services;
  for (std::size_t n = 0; n < cluster.storage_node_count(); ++n) {
    cluster.storage_node(n).uninstall_dfs();
    services.push_back(std::make_unique<HostDfsService>(cluster.storage_node(n), cfg.dfs));
  }

  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kErasureCoding;
  policy.ec_k = 3;
  policy.ec_m = 2;
  const auto& layout = cluster.metadata().create("a", 30000, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  Bytes data = random_bytes(30000, 8);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
  Bytes padded = data;
  padded.resize(chunk_len * 3, 0);
  std::vector<Bytes> chunks(3);
  for (unsigned i = 0; i < 3; ++i) {
    chunks[i].assign(padded.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                     padded.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
  }
  ec::ReedSolomon rs(3, 2);
  const auto parity = rs.encode(chunks);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.storage_by_node(layout.parity[i].node)
                  .target()
                  .read(layout.parity[i].addr, chunk_len),
              parity[i]);
  }
}

TEST(Steering, RetryRecoversFromTableExhaustion) {
  // §III-B.2: "the request is denied, and the client will retry later."
  ClusterConfig cfg;
  cfg.dfs.req_table_bytes = dfs::kReqDescriptorBytes;  // one slot
  cfg.storage_nodes = 1;
  cfg.clients = 2;
  Cluster cluster(cfg);
  Client c0(cluster, 0), c1(cluster, 1);
  c0.set_retry_policy(5, us(50));
  c1.set_retry_policy(5, us(50));
  const auto& la = cluster.metadata().create("a", 1 * MiB, services::FilePolicy{});
  const auto& lb = cluster.metadata().create("b", 1 * MiB, services::FilePolicy{});
  const auto capa = cluster.metadata().grant(c0.client_id(), la, auth::Right::kWrite);
  const auto capb = cluster.metadata().grant(c1.client_id(), lb, auth::Right::kWrite);

  const Bytes da = random_bytes(512 * KiB, 9);
  const Bytes db = random_bytes(512 * KiB, 10);
  int oks = 0;
  c0.write(la, capa, da, [&](bool ok, TimePs) { oks += ok; });
  c1.write(lb, capb, db, [&](bool ok, TimePs) { oks += ok; });
  cluster.sim().run();

  EXPECT_EQ(oks, 2);  // the denied write eventually succeeds via retry
  EXPECT_GE(c0.retries_performed() + c1.retries_performed(), 1u);
  auto& node = cluster.storage_node(0);
  EXPECT_EQ(node.target().read(la.targets[0].addr, da.size()), da);
  EXPECT_EQ(node.target().read(lb.targets[0].addr, db.size()), db);
}

TEST(Steering, OffsetWriteAndRead) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("a", 64 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  const Bytes head = random_bytes(1000, 11);
  const Bytes mid = random_bytes(1000, 12);
  bool ok1 = false, ok2 = false;
  client.write_at(layout, cap, 0, head, [&](bool o, TimePs) { ok1 = o; });
  client.write_at(layout, cap, 10000, mid, [&](bool o, TimePs) { ok2 = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok1 && ok2);

  Bytes got;
  client.read_at(layout, cap, 10000, 1000, [&](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  EXPECT_EQ(got, mid);
  EXPECT_EQ(cluster.storage_by_node(layout.targets[0].node)
                .target()
                .read(layout.targets[0].addr, 1000),
            head);
}

TEST(Steering, OffsetWriteBoundsChecked) {
  Cluster cluster;
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("a", 4 * KiB, FilePolicy{});
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  EXPECT_THROW(client.write_at(layout, cap, 4000, Bytes(1000, 0), [](bool, TimePs) {}),
               std::length_error);
}

TEST(Steering, OffsetReplicatedWrite) {
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("a", 64 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  const Bytes data = random_bytes(5000, 13);
  bool ok = false;
  client.write_at(layout, cap, 7777, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(
        cluster.storage_by_node(coord.node).target().read(coord.addr + 7777, data.size()),
        data);
  }
}

}  // namespace
}  // namespace nadfs
