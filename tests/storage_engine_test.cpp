// Storage-engine subsystem suite (DESIGN.md §3h).
//
// Three layers of assurance:
//  - StorageEngine.*: unit behaviour of each backend (factory, NVMM
//    timing, per-node selection in a cluster).
//  - BetaTree.*: the write-optimized engine's moving parts — memtable
//    freeze/flush, fanout-triggered compaction, range-delete shadowing,
//    buffer-full stalls — plus cluster-level digest determinism.
//  - EngineEquivalence.*: the refactor-safety nets. The line-rate engine
//    is compared op-for-op against an inline re-implementation of the
//    pre-engine Target (same GapServer use, flat byte oracle), and the
//    Bε-tree's functional behaviour is differential-tested against a flat
//    in-memory oracle under randomized workloads.
//
// scripts/check.sh reruns this binary under NADFS_SIM_PARALLEL={0,1} x
// NADFS_CHAOS_SEED={1,7}; the randomized suites fold the seed in and
// print it on failure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "common/rng.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"
#include "sim/simulator.hpp"
#include "storage/engine/betree.hpp"
#include "storage/engine/engine.hpp"
#include "storage/target.hpp"

namespace nadfs::storage {
namespace {

std::uint64_t env_seed() {
  const char* env = std::getenv("NADFS_CHAOS_SEED");
  return env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 10) : 1;
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

EngineConfig betree_config() {
  EngineConfig cfg;
  cfg.kind = EngineKind::kBetaTree;
  cfg.device_bandwidth = Bandwidth::from_gbytes_per_sec(1.0);  // 1000 ps/B
  cfg.memtable_bytes = 4 * KiB;
  cfg.buffer_capacity = 12 * KiB;
  cfg.fanout = 2;
  return cfg;
}

// ------------------------------------------------------------ StorageEngine

TEST(StorageEngine, FactoryProducesEveryKind) {
  sim::Simulator sim;
  const Bandwidth ingest = Bandwidth::from_gbytes_per_sec(64.0);
  for (const EngineKind kind :
       {EngineKind::kLineRate, EngineKind::kNvmm, EngineKind::kBetaTree}) {
    EngineConfig cfg;
    cfg.kind = kind;
    const auto engine = make_engine(sim, cfg, ingest);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_STREQ(engine->name(), engine_kind_name(kind));
  }
}

TEST(StorageEngine, NvmmChargesBandwidthAndLatency) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine.kind = EngineKind::kNvmm;
  tcfg.engine.device_bandwidth = Bandwidth::from_gbytes_per_sec(1.0);  // 1000 ps/B
  tcfg.engine.write_latency = ns(300);
  tcfg.engine.read_latency = ns(200);
  Target t(sim, tcfg);

  // 1000 B at 1 GB/s = 1 us on the device, plus media latency.
  const TimePs d1 = t.write(0, Bytes(1000, 0xAB));
  EXPECT_EQ(d1, us(1) + ns(300));
  // Second write queues behind the first on the shared device budget.
  const TimePs d2 = t.write(1000, Bytes(1000, 0xCD));
  EXPECT_EQ(d2, us(2) + ns(300));
  // Reads share the same budget: this read starts after both writes.
  const auto r = t.read_at(0, 1000, 0);
  EXPECT_EQ(r.ready, us(3) + ns(200));
  EXPECT_EQ(r.data, Bytes(1000, 0xAB));
  // Functional read is free and identical.
  EXPECT_EQ(t.read(1000, 1000), Bytes(1000, 0xCD));
}

TEST(StorageEngine, PerNodeEngineSelectionInCluster) {
  services::ClusterConfig cfg;
  cfg.storage_nodes = 4;
  TargetConfig line;  // default kLineRate
  TargetConfig betree;
  betree.engine = betree_config();
  cfg.per_node_target = {line, betree};
  services::Cluster cluster(cfg);

  for (unsigned i = 0; i < 4; ++i) {
    const auto& engine = cluster.storage_node(i).target().engine();
    const EngineKind want = i % 2 == 0 ? EngineKind::kLineRate : EngineKind::kBetaTree;
    EXPECT_EQ(engine.kind(), want) << "node " << i;
  }
  // The heterogeneous cluster still serves a replicated write + read.
  services::Client client(cluster, 0);
  services::FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("f", 8 * KiB, policy);
  const auto cap =
      cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  const Bytes data = random_bytes(8 * KiB, 5);
  bool ok = false;
  client.write(layout, cap, data, [&](bool w, TimePs) { ok = w; });
  cluster.sim().run();
  ASSERT_TRUE(ok);
  Bytes back;
  client.read(layout, cap, 8 * KiB, services::ReadCb([&](dfs::DfsError e, Bytes d, TimePs) {
                EXPECT_EQ(e, dfs::DfsError::kOk);
                back = std::move(d);
              }));
  cluster.sim().run();
  EXPECT_EQ(back, data);
}

TEST(StorageEngine, MetricsExposeAmplificationAndOccupancy) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  Target t(sim, tcfg);
  obs::MetricRegistry reg;
  t.bind_metrics(reg, "node0.storage");

  const Bytes chunk = random_bytes(4 * KiB, 11);
  for (int i = 0; i < 8; ++i) t.write(static_cast<std::uint64_t>(i) * 4 * KiB, chunk);
  sim.run();
  t.read_at(0, 4 * KiB, sim.now());

  const auto snap = reg.snapshot();
  EXPECT_GT(snap.at("node0.storage.engine.flushes"), 0);
  EXPECT_GT(snap.at("node0.storage.engine.write_amp_x100"), 100);  // > 1x: WAL + flush
  EXPECT_GE(snap.at("node0.storage.engine.read_amp_x100"), 0);
  EXPECT_GE(snap.at("node0.storage.engine.backlog_runs"), 0);
  EXPECT_GE(snap.at("node0.storage.engine.buffer_bytes"), 0);
  EXPECT_EQ(snap.at("node0.storage.bytes_written"), 8 * 4 * KiB);
}

// ---------------------------------------------------------------- BetaTree

TEST(BetaTree, MemtableFreezesAndFlushesToLevelZero) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  Target t(sim, tcfg);
  auto& eng = dynamic_cast<BetaTreeEngine&>(t.engine());

  const Bytes a = random_bytes(4 * KiB, 1);
  t.write(0, a);  // exactly one memtable: freeze + flush start
  EXPECT_EQ(eng.buffered_bytes(), 4 * KiB);
  EXPECT_EQ(eng.flushes(), 1u);
  sim.run();  // flush commit drains the buffer into L0
  EXPECT_EQ(eng.buffered_bytes(), 0u);
  EXPECT_EQ(eng.backlog_runs(), 1u);
  EXPECT_GE(eng.level_count(), 1u);
  EXPECT_EQ(t.read(0, 4 * KiB), a);  // served from the on-device run
}

TEST(BetaTree, FanoutTriggersCompactionIntoNextLevel) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();  // fanout = 2
  Target t(sim, tcfg);
  auto& eng = dynamic_cast<BetaTreeEngine&>(t.engine());

  // Four disjoint memtables -> two L0 compactions -> two L1 runs.
  for (int i = 0; i < 4; ++i) {
    t.write(static_cast<std::uint64_t>(i) * 4 * KiB, random_bytes(4 * KiB, 100 + i));
    sim.run();
  }
  EXPECT_EQ(eng.flushes(), 4u);
  EXPECT_GE(eng.compactions(), 2u);
  EXPECT_GT(eng.compact_read_bytes(), 0u);
  EXPECT_GT(eng.compact_write_bytes(), 0u);
  // Every byte still reads back correctly after the merges.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.read(static_cast<std::uint64_t>(i) * 4 * KiB, 4 * KiB),
              random_bytes(4 * KiB, 100 + i))
        << "extent " << i;
  }
}

TEST(BetaTree, NewestWriteShadowsOlderRunsAndTombstones) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  Target t(sim, tcfg);

  const Bytes v1 = Bytes(4 * KiB, 0x11);
  const Bytes v2 = Bytes(4 * KiB, 0x22);
  t.write(0, v1);
  sim.run();  // v1 flushed on-device
  t.trim(0, 4 * KiB);  // range-delete message shadows it
  EXPECT_EQ(t.read(0, 4 * KiB), Bytes(4 * KiB, 0));
  EXPECT_TRUE(t.trimmed(0, 4 * KiB));
  t.write(0, v2);  // newest shadows the tombstone
  EXPECT_EQ(t.read(0, 4 * KiB), v2);
  EXPECT_FALSE(t.trimmed(0, 4 * KiB));
  sim.run();  // flush everything; order must survive the merges
  EXPECT_EQ(t.read(0, 4 * KiB), v2);
  // Partial overwrite on top of flushed data: head from v2, tail new.
  t.write(2 * KiB, Bytes(4 * KiB, 0x33));
  EXPECT_EQ(t.read(0, 2 * KiB), Bytes(2 * KiB, 0x22));
  EXPECT_EQ(t.read(2 * KiB, 4 * KiB), Bytes(4 * KiB, 0x33));
}

TEST(BetaTree, BufferOverCapacityStallsWrites) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  tcfg.engine.device_bandwidth = Bandwidth::from_gbytes_per_sec(0.1);  // 10 ns/B: slow
  tcfg.engine.buffer_capacity = 6 * KiB;
  Target t(sim, tcfg);
  auto& eng = dynamic_cast<BetaTreeEngine&>(t.engine());

  // Burst far past the buffer without letting flush commits run.
  TimePs last = 0;
  for (int i = 0; i < 6; ++i) {
    last = t.write(static_cast<std::uint64_t>(i) * 4 * KiB, Bytes(4 * KiB, 0x5A));
  }
  EXPECT_GT(eng.buffered_bytes(), tcfg.engine.buffer_capacity);
  EXPECT_GT(eng.stalls(), 0u);
  EXPECT_GT(eng.stall_ps(), 0u);
  sim.run();
  EXPECT_EQ(eng.buffered_bytes(), 0u);  // backlog drains once events run
  EXPECT_GT(last, 0u);
}

TEST(BetaTree, ReadAmplificationChargedPerRunTouched) {
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  tcfg.engine.fanout = 16;  // keep runs unmerged so the read spans many
  Target t(sim, tcfg);
  auto& eng = dynamic_cast<BetaTreeEngine&>(t.engine());

  // Three flushed runs, each holding a third of the range.
  for (int i = 0; i < 3; ++i) {
    t.write(static_cast<std::uint64_t>(i) * 4 * KiB, random_bytes(4 * KiB, 50 + i));
    sim.run();
  }
  ASSERT_EQ(eng.backlog_runs(), 3u);
  const TimePs t0 = sim.now();
  const auto r = t.read_at(0, 12 * KiB, t0);
  // 12 KiB of device payload from 3 distinct runs: bandwidth charge plus
  // one read latency per run touched.
  EXPECT_EQ(r.ready, t0 + tcfg.engine.device_bandwidth.transfer_time(12 * KiB) +
                         3 * tcfg.engine.read_latency);
  EXPECT_EQ(eng.compact_read_bytes(), 0u);
}

std::uint64_t betree_cluster_digest(std::uint64_t seed, bool parallel) {
  services::ClusterConfig cfg;
  cfg.storage_nodes = 4;
  cfg.parallel.mode = parallel ? services::SimParallelConfig::Mode::kOn
                               : services::SimParallelConfig::Mode::kOff;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  cfg.per_node_target = {tcfg};
  services::Cluster cluster(cfg);
  services::Client client(cluster, 0);
  services::FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.strategy = dfs::ReplStrategy::kPbt;
  policy.repl_k = 4;
  const std::size_t size = 24 * KiB + 13;
  const auto& layout = cluster.metadata().create("o", size, policy);
  const auto cap =
      cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);
  bool ok = false;
  client.write(layout, cap, random_bytes(size, seed), [&](bool w, TimePs) { ok = w; });
  const TimePs end = cluster.sim().run();
  EXPECT_TRUE(ok) << "seed " << seed;

  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 1099511628211ull;
    }
  };
  mix(end);
  mix(cluster.sim().executed_events());
  for (const auto& coord : layout.targets) {
    for (const auto b : cluster.storage_by_node(coord.node).target().read(coord.addr, size)) {
      h ^= b;
      h *= 1099511628211ull;
    }
  }
  return h;
}

TEST(BetaTree, ClusterDigestIsReproducible) {
  const std::uint64_t seed = env_seed();
  const auto first = betree_cluster_digest(seed, false);
  const auto second = betree_cluster_digest(seed, false);
  EXPECT_EQ(first, second) << "seed " << seed;
}

TEST(BetaTree, ClusterDigestSerialMatchesParallel) {
  const std::uint64_t seed = env_seed();
  const auto serial = betree_cluster_digest(seed, false);
  const auto parallel = betree_cluster_digest(seed, true);
  EXPECT_EQ(serial, parallel) << "seed " << seed;
}

// ------------------------------------------------------- EngineEquivalence

/// The pre-engine Target's timing model, re-implemented inline: one
/// GapServer at the ingest bandwidth, write = reserve(bytes), trim/read
/// free. The functional store is a flat byte array.
struct LegacyModel {
  explicit LegacyModel(sim::Simulator& sim, Bandwidth ingest, std::size_t span)
      : ingest(sim, ingest), bytes(span, 0) {}

  TimePs write(std::uint64_t addr, ByteSpan data, TimePs earliest) {
    std::copy(data.begin(), data.end(), bytes.begin() + static_cast<std::ptrdiff_t>(addr));
    return ingest.reserve(data.size(), earliest).end;
  }
  TimePs trim(std::uint64_t addr, std::uint64_t len, TimePs earliest) {
    std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(addr),
              bytes.begin() + static_cast<std::ptrdiff_t>(addr + len), 0);
    return ingest.reserve(0, earliest).end;
  }
  Bytes read(std::uint64_t addr, std::size_t len) const {
    return Bytes(bytes.begin() + static_cast<std::ptrdiff_t>(addr),
                 bytes.begin() + static_cast<std::ptrdiff_t>(addr + len));
  }

  sim::GapServer ingest;
  Bytes bytes;
};

TEST(EngineEquivalence, LineRateMatchesLegacyTargetOpForOp) {
  const std::uint64_t seed = env_seed() * 1000003 + 17;
  constexpr std::size_t kSpan = 256 * KiB;
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.ingest = Bandwidth::from_gbytes_per_sec(4.0);
  Target t(sim, tcfg);
  sim::Simulator legacy_sim;
  LegacyModel legacy(legacy_sim, tcfg.ingest, kSpan);

  Rng rng(seed);
  TimePs clock = 0;
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t addr = rng.next_below(kSpan - 8 * KiB);
    const std::size_t len = 1 + static_cast<std::size_t>(rng.next_below(8 * KiB));
    clock += rng.next_below(us(1));
    const auto pick = rng.next_below(4);
    if (pick == 0) {
      // Trim through the engine only (Target::trim adds tombstone
      // bookkeeping the legacy model never had; the engine timing is the
      // comparable surface).
      const TimePs a = t.engine().trim(addr, len, clock);
      const TimePs b = legacy.trim(addr, len, clock);
      ASSERT_EQ(a, b) << "op " << op << " trim, seed " << seed;
    } else if (pick == 1) {
      const auto got = t.read_at(addr, len, clock);
      ASSERT_EQ(got.ready, clock) << "op " << op << " read_at, seed " << seed;
      ASSERT_EQ(got.data, legacy.read(addr, len)) << "op " << op << ", seed " << seed;
    } else {
      const Bytes data = random_bytes(len, seed + static_cast<std::uint64_t>(op));
      const TimePs a = t.write(addr, data, clock);
      const TimePs b = legacy.write(addr, data, clock);
      ASSERT_EQ(a, b) << "op " << op << " write, seed " << seed;
    }
  }
  // Full-span functional sweep.
  ASSERT_EQ(t.read(0, kSpan), legacy.read(0, kSpan)) << "seed " << seed;
  // The line-rate engine must not have scheduled a single event: digests
  // that fold executed_events stay pinned.
  EXPECT_EQ(sim.executed_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 0u);
}

/// Differential oracle for the Bε-tree: a flat byte array that applies
/// writes and trims instantly. The engine must agree functionally after
/// any prefix of a randomized workload, while its timing stays a pure
/// function of the op sequence (digest double-run below).
TEST(EngineEquivalence, BetaTreeMatchesFlatOracleRandomized) {
  const std::uint64_t seed = env_seed() * 2654435761 + 99;
  constexpr std::size_t kSpan = 128 * KiB;
  sim::Simulator sim;
  TargetConfig tcfg;
  tcfg.engine = betree_config();
  Target t(sim, tcfg);
  Bytes oracle(kSpan, 0);

  Rng rng(seed);
  for (int op = 0; op < 600; ++op) {
    const std::uint64_t addr = rng.next_below(kSpan - 4 * KiB);
    const std::size_t len = 1 + static_cast<std::size_t>(rng.next_below(4 * KiB));
    const auto pick = rng.next_below(8);
    if (pick == 0) {
      t.trim(addr, len, sim.now());
      std::fill(oracle.begin() + static_cast<std::ptrdiff_t>(addr),
                oracle.begin() + static_cast<std::ptrdiff_t>(addr + len), 0);
    } else if (pick == 1) {
      sim.run();  // drain flush/compaction backlog mid-workload
    } else {
      const Bytes data = random_bytes(len, seed ^ (static_cast<std::uint64_t>(op) << 20));
      t.write(addr, data, sim.now());
      std::copy(data.begin(), data.end(),
                oracle.begin() + static_cast<std::ptrdiff_t>(addr));
    }
    if (op % 97 == 0) {
      ASSERT_EQ(t.read(addr, 4 * KiB < kSpan - addr ? 4 * KiB : kSpan - addr),
                Bytes(oracle.begin() + static_cast<std::ptrdiff_t>(addr),
                      oracle.begin() + static_cast<std::ptrdiff_t>(
                                           addr + (4 * KiB < kSpan - addr ? 4 * KiB
                                                                          : kSpan - addr))))
          << "op " << op << ", seed " << seed;
    }
  }
  sim.run();
  ASSERT_EQ(t.read(0, kSpan), oracle) << "seed " << seed;
}

/// Same randomized workload twice: identical durability times, identical
/// event counts — the Bε-tree's background machinery is deterministic.
TEST(EngineEquivalence, BetaTreeRandomizedTimingDigestIsReproducible) {
  const std::uint64_t seed = env_seed() * 7919 + 3;
  const auto run_once = [seed] {
    constexpr std::size_t kSpan = 64 * KiB;
    sim::Simulator sim;
    TargetConfig tcfg;
    tcfg.engine = betree_config();
    Target t(sim, tcfg);
    Rng rng(seed);
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= static_cast<unsigned char>(v >> (8 * i));
        h *= 1099511628211ull;
      }
    };
    for (int op = 0; op < 300; ++op) {
      const std::uint64_t addr = rng.next_below(kSpan - 4 * KiB);
      const std::size_t len = 1 + static_cast<std::size_t>(rng.next_below(4 * KiB));
      if (rng.next_below(6) == 0) {
        mix(t.trim(addr, len, sim.now()));
      } else {
        mix(t.write(addr, random_bytes(len, seed + static_cast<std::uint64_t>(op)),
                    sim.now()));
      }
      if (op % 50 == 49) sim.run();
    }
    mix(sim.run());
    mix(sim.executed_events());
    for (const auto b : t.read(0, kSpan)) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  };
  EXPECT_EQ(run_once(), run_once()) << "seed " << seed;
}

}  // namespace
}  // namespace nadfs::storage
