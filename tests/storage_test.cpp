#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "storage/target.hpp"

namespace nadfs::storage {
namespace {

TEST(Target, WriteReadRoundTrip) {
  sim::Simulator sim;
  Target t(sim);
  Bytes data{1, 2, 3, 4, 5};
  t.write(100, data);
  EXPECT_EQ(t.read(100, 5), data);
}

TEST(Target, UnwrittenReadsZero) {
  sim::Simulator sim;
  Target t(sim);
  EXPECT_EQ(t.read(0, 4), (Bytes{0, 0, 0, 0}));
}

TEST(Target, CrossPageWrite) {
  sim::Simulator sim;
  Target t(sim);
  Bytes data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  t.write(4000, data);  // spans three 4 KiB pages
  EXPECT_EQ(t.read(4000, 10000), data);
  // Neighbouring bytes untouched.
  EXPECT_EQ(t.read(3999, 1), Bytes{0});
}

TEST(Target, OverlappingWritesLastWins) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(8, 0xAA));
  t.write(4, Bytes(8, 0xBB));
  const auto got = t.read(0, 12);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], 0xAA);
  for (int i = 4; i < 12; ++i) EXPECT_EQ(got[i], 0xBB);
}

TEST(Target, IngestBandwidthTiming) {
  sim::Simulator sim;
  TargetConfig cfg;
  cfg.ingest = Bandwidth::from_gbytes_per_sec(1.0);  // 1000 ps/B
  Target t(sim, cfg);
  const TimePs d1 = t.write(0, Bytes(1000, 0));
  const TimePs d2 = t.write(1000, Bytes(1000, 0));
  EXPECT_EQ(d1, TimePs{1000 * 1000});
  EXPECT_EQ(d2, d1 + 1000 * 1000);  // serialized behind the first
}

TEST(Target, EarliestDelaysDurability) {
  sim::Simulator sim;
  Target t(sim);
  const TimePs d = t.write(0, Bytes(10, 0), us(5));
  EXPECT_GE(d, us(5));
}

TEST(Target, CapacityEnforced) {
  sim::Simulator sim;
  TargetConfig cfg;
  cfg.capacity = 1024;
  Target t(sim, cfg);
  EXPECT_NO_THROW(t.write(0, Bytes(1024, 1)));
  EXPECT_THROW(t.write(1, Bytes(1024, 1)), std::out_of_range);
  EXPECT_THROW(t.read(1020, 8), std::out_of_range);
}

TEST(Target, BytesWrittenAccounting) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(100, 0));
  t.write(0, Bytes(50, 0));
  EXPECT_EQ(t.bytes_written(), 150u);
}

// ------------------------------------------ trim tombstone regressions
//
// The tombstone range set lives in Target (not the engine), keyed by start
// address and non-overlapping. These pin the merge/split edge cases that a
// future map rewrite is most likely to get wrong.

TEST(Target, TrimAdjacentRangesMergeIntoOne) {
  sim::Simulator sim;
  Target t(sim);
  t.write(4096, Bytes(8192, 0x5A));
  // Two trims that abut exactly at 8192: the set must behave as one
  // contiguous [4096, 12288) range, including across the seam.
  t.trim(4096, 4096);
  t.trim(8192, 4096);
  EXPECT_TRUE(t.trimmed(4096, 8192));
  EXPECT_TRUE(t.trimmed(8190, 4));  // straddles the merge seam
  EXPECT_FALSE(t.trimmed(12288, 1));
  EXPECT_FALSE(t.trimmed(4095, 1));
  // Trimmed bytes read back zero.
  EXPECT_EQ(t.read(8190, 4), (Bytes{0, 0, 0, 0}));
}

TEST(Target, TrimPartialOverlapReTrimExtendsTheRange) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(16384, 0x11));
  t.trim(1024, 4096);  // [1024, 5120)
  // Overlapping re-trim that starts inside and ends past the first range.
  t.trim(4096, 4096);  // extends to [1024, 8192)
  EXPECT_TRUE(t.trimmed(1024, 7168));
  EXPECT_FALSE(t.trimmed(8192, 1));
  // Re-trim fully inside an existing range is a no-op for coverage.
  t.trim(2048, 1024);
  EXPECT_TRUE(t.trimmed(1024, 7168));
  // And one that starts before and ends inside extends the left edge.
  t.trim(512, 1024);  // [512, 8192)
  EXPECT_TRUE(t.trimmed(512, 7680));
  EXPECT_FALSE(t.trimmed(511, 1));
}

TEST(Target, WriteRevivesAcrossMergedRanges) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(12288, 0x77));
  t.trim(0, 4096);
  t.trim(4096, 4096);
  t.trim(8192, 4096);  // one merged [0, 12288) range
  ASSERT_TRUE(t.trimmed(0, 12288));
  // A write spanning the middle of the merged range punches a hole,
  // leaving live bytes flanked by two surviving tombstones.
  t.write(2048, Bytes(8192, 0xC3));
  EXPECT_FALSE(t.trimmed(2048, 8192));
  EXPECT_TRUE(t.trimmed(0, 2048));
  EXPECT_TRUE(t.trimmed(10240, 2048));
  EXPECT_TRUE(t.trimmed(1024, 4096));  // query overlapping hole + tombstone
  EXPECT_EQ(t.read(2048, 4), Bytes(4, 0xC3));
  EXPECT_EQ(t.read(0, 4), Bytes(4, 0));       // left tombstone zeroed
  EXPECT_EQ(t.read(10240, 4), Bytes(4, 0));   // right tombstone zeroed
}

TEST(Target, TrimAccountingAndZeroLenTrim) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(4096, 0xEE));
  const TimePs d0 = t.trim(0, 0);  // zero-length: priced, no tombstone
  EXPECT_FALSE(t.trimmed(0, 1));
  EXPECT_EQ(t.bytes_trimmed(), 0u);
  const TimePs d1 = t.trim(0, 4096, d0);
  EXPECT_GE(d1, d0);
  EXPECT_EQ(t.bytes_trimmed(), 4096u);
}

}  // namespace
}  // namespace nadfs::storage
