#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "storage/target.hpp"

namespace nadfs::storage {
namespace {

TEST(Target, WriteReadRoundTrip) {
  sim::Simulator sim;
  Target t(sim);
  Bytes data{1, 2, 3, 4, 5};
  t.write(100, data);
  EXPECT_EQ(t.read(100, 5), data);
}

TEST(Target, UnwrittenReadsZero) {
  sim::Simulator sim;
  Target t(sim);
  EXPECT_EQ(t.read(0, 4), (Bytes{0, 0, 0, 0}));
}

TEST(Target, CrossPageWrite) {
  sim::Simulator sim;
  Target t(sim);
  Bytes data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  t.write(4000, data);  // spans three 4 KiB pages
  EXPECT_EQ(t.read(4000, 10000), data);
  // Neighbouring bytes untouched.
  EXPECT_EQ(t.read(3999, 1), Bytes{0});
}

TEST(Target, OverlappingWritesLastWins) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(8, 0xAA));
  t.write(4, Bytes(8, 0xBB));
  const auto got = t.read(0, 12);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], 0xAA);
  for (int i = 4; i < 12; ++i) EXPECT_EQ(got[i], 0xBB);
}

TEST(Target, IngestBandwidthTiming) {
  sim::Simulator sim;
  TargetConfig cfg;
  cfg.ingest = Bandwidth::from_gbytes_per_sec(1.0);  // 1000 ps/B
  Target t(sim, cfg);
  const TimePs d1 = t.write(0, Bytes(1000, 0));
  const TimePs d2 = t.write(1000, Bytes(1000, 0));
  EXPECT_EQ(d1, TimePs{1000 * 1000});
  EXPECT_EQ(d2, d1 + 1000 * 1000);  // serialized behind the first
}

TEST(Target, EarliestDelaysDurability) {
  sim::Simulator sim;
  Target t(sim);
  const TimePs d = t.write(0, Bytes(10, 0), us(5));
  EXPECT_GE(d, us(5));
}

TEST(Target, CapacityEnforced) {
  sim::Simulator sim;
  TargetConfig cfg;
  cfg.capacity = 1024;
  Target t(sim, cfg);
  EXPECT_NO_THROW(t.write(0, Bytes(1024, 1)));
  EXPECT_THROW(t.write(1, Bytes(1024, 1)), std::out_of_range);
  EXPECT_THROW(t.read(1020, 8), std::out_of_range);
}

TEST(Target, BytesWrittenAccounting) {
  sim::Simulator sim;
  Target t(sim);
  t.write(0, Bytes(100, 0));
  t.write(0, Bytes(50, 0));
  EXPECT_EQ(t.bytes_written(), 150u);
}

}  // namespace
}  // namespace nadfs::storage
