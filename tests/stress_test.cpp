// Randomized whole-system stress: many clients, mixed policies (plain,
// ring/pbt replication, EC), mixed operation sizes, concurrent issue — at
// the end every object's durable state must match the reference model and
// every invariant (slots freed, replicas identical, parity decodable) must
// hold. Runs with a fixed seed per instantiation for reproducibility.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "ec/reed_solomon.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FileLayout;
using services::FilePolicy;

struct ObjectModel {
  const FileLayout* layout;
  Bytes expected;
  std::size_t owner;  // client index
};

class SystemStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemStress, MixedWorkloadConvergesToModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ClusterConfig cfg;
  cfg.storage_nodes = 8;
  cfg.clients = 3;
  Cluster cluster(cfg);
  std::vector<std::unique_ptr<Client>> clients;
  for (unsigned c = 0; c < cfg.clients; ++c) {
    clients.push_back(std::make_unique<Client>(cluster, c));
  }

  // Create 24 objects across all policy classes.
  std::vector<ObjectModel> objects;
  for (int i = 0; i < 24; ++i) {
    FilePolicy policy;
    switch (rng.next_below(4)) {
      case 0:
        break;  // plain
      case 1:
        policy.resiliency = dfs::Resiliency::kReplication;
        policy.strategy = dfs::ReplStrategy::kRing;
        policy.repl_k = static_cast<std::uint8_t>(rng.next_range(2, 5));
        break;
      case 2:
        policy.resiliency = dfs::Resiliency::kReplication;
        policy.strategy = dfs::ReplStrategy::kPbt;
        policy.repl_k = static_cast<std::uint8_t>(rng.next_range(2, 8));
        break;
      case 3:
        policy.resiliency = dfs::Resiliency::kErasureCoding;
        policy.ec_k = static_cast<std::uint8_t>(rng.next_range(2, 4));
        policy.ec_m = static_cast<std::uint8_t>(rng.next_range(1, 3));
        break;
    }
    const std::size_t size = 1 + rng.next_below(96 * KiB);
    ObjectModel obj;
    obj.layout = &cluster.metadata().create("obj" + std::to_string(i), size, policy);
    obj.owner = rng.next_below(cfg.clients);
    objects.push_back(obj);
  }

  // Issue an initial full write on every object, staggered in time.
  unsigned completed = 0;
  unsigned expected_ops = 0;
  for (auto& obj : objects) {
    Bytes data(obj.layout->size);
    for (auto& b : data) b = rng.next_byte();
    obj.expected = data;
    ++expected_ops;
    const TimePs when = rng.next_below(us(50));
    auto* client = clients[obj.owner].get();
    const auto cap =
        cluster.metadata().grant(client->client_id(), *obj.layout, auth::Right::kReadWrite);
    cluster.sim().schedule(when, [client, &obj, cap, data = std::move(data), &completed]() {
      client->write(*obj.layout, cap, data, [&completed](bool ok, TimePs) {
        EXPECT_TRUE(ok);
        ++completed;
      });
    });
  }
  cluster.sim().run();
  ASSERT_EQ(completed, expected_ops);

  // Overwrite a random subset (plain/replicated objects support offsets).
  for (auto& obj : objects) {
    if (rng.next_below(2) == 0) continue;
    auto* client = clients[obj.owner].get();
    const auto cap =
        cluster.metadata().grant(client->client_id(), *obj.layout, auth::Right::kReadWrite);
    std::uint64_t off = 0;
    std::size_t len = obj.layout->size;
    if (obj.layout->policy.resiliency != dfs::Resiliency::kErasureCoding &&
        obj.layout->size > 2) {
      off = rng.next_below(obj.layout->size / 2);
      len = 1 + rng.next_below(obj.layout->size - off - 1);
    }
    Bytes data(len);
    for (auto& b : data) b = rng.next_byte();
    std::copy(data.begin(), data.end(),
              obj.expected.begin() + static_cast<std::ptrdiff_t>(off));
    if (obj.layout->policy.resiliency == dfs::Resiliency::kErasureCoding) {
      obj.expected = data;
      obj.expected.resize(obj.layout->size, 0);
    }
    ++expected_ops;
    client->write_at(*obj.layout, cap, off, std::move(data), [&completed](bool ok, TimePs) {
      EXPECT_TRUE(ok);
      ++completed;
    });
  }
  cluster.sim().run();
  ASSERT_EQ(completed, expected_ops);

  // Read a random subset back through the offloaded read path and compare
  // against the model (primary target / chunk 0 for EC objects).
  unsigned reads_ok = 0, reads_issued = 0;
  for (auto& obj : objects) {
    if (rng.next_below(3) != 0) continue;
    auto* client = clients[obj.owner].get();
    const auto cap =
        cluster.metadata().grant(client->client_id(), *obj.layout, auth::Right::kRead);
    std::size_t len = obj.expected.size();
    if (obj.layout->policy.resiliency == dfs::Resiliency::kErasureCoding) {
      len = std::min<std::size_t>(len, static_cast<std::size_t>(obj.layout->chunk_len));
    }
    if (len == 0) continue;
    ++reads_issued;
    client->read(*obj.layout, cap, static_cast<std::uint32_t>(len),
                 [&reads_ok, &obj, len](Bytes data, TimePs) {
                   reads_ok += data == Bytes(obj.expected.begin(),
                                             obj.expected.begin() +
                                                 static_cast<std::ptrdiff_t>(len));
                 });
  }
  cluster.sim().run();
  EXPECT_EQ(reads_ok, reads_issued);

  // ---- verification against the model ----
  for (const auto& obj : objects) {
    const auto& layout = *obj.layout;
    switch (layout.policy.resiliency) {
      case dfs::Resiliency::kNone:
      case dfs::Resiliency::kReplication: {
        for (const auto& coord : layout.targets) {
          EXPECT_EQ(cluster.storage_by_node(coord.node)
                        .target()
                        .read(coord.addr, obj.expected.size()),
                    obj.expected)
              << "object " << layout.object_id << " node " << coord.node;
        }
        break;
      }
      case dfs::Resiliency::kErasureCoding: {
        const auto chunk_len = static_cast<std::size_t>(layout.chunk_len);
        Bytes padded = obj.expected;
        padded.resize(chunk_len * layout.policy.ec_k, 0);
        std::vector<Bytes> chunks(layout.policy.ec_k);
        for (unsigned i = 0; i < layout.policy.ec_k; ++i) {
          chunks[i].assign(padded.begin() + static_cast<std::ptrdiff_t>(i * chunk_len),
                           padded.begin() + static_cast<std::ptrdiff_t>((i + 1) * chunk_len));
          EXPECT_EQ(cluster.storage_by_node(layout.targets[i].node)
                        .target()
                        .read(layout.targets[i].addr, chunk_len),
                    chunks[i])
              << "object " << layout.object_id << " chunk " << i;
        }
        ec::ReedSolomon rs(layout.policy.ec_k, layout.policy.ec_m);
        const auto parity = rs.encode(chunks);
        for (unsigned i = 0; i < layout.policy.ec_m; ++i) {
          EXPECT_EQ(cluster.storage_by_node(layout.parity[i].node)
                        .target()
                        .read(layout.parity[i].addr, chunk_len),
                    parity[i])
              << "object " << layout.object_id << " parity " << i;
        }
        break;
      }
    }
  }

  // ---- invariants ----
  for (std::size_t n = 0; n < cluster.storage_node_count(); ++n) {
    auto& node = cluster.storage_node(n);
    EXPECT_EQ(node.dfs_state()->table.in_use(), 0u) << "leaked slot on node " << n;
    EXPECT_EQ(node.dfs_state()->pool.in_use(), 0u) << "leaked accumulator on node " << n;
    EXPECT_EQ(node.pspin().live_messages(), 0u) << "dangling message on node " << n;
    EXPECT_EQ(node.pspin().cleanup_runs(), 0u) << "spurious cleanup on node " << n;
    EXPECT_EQ(node.dfs_state()->auth_failures, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemStress,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 42ull, 1337ull),
                         [](const ::testing::TestParamInfo<std::uint64_t>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace nadfs
