// Tests of RAID-0-style file striping in the client library: layout
// arithmetic, writes/reads crossing stripe-unit boundaries, and bandwidth
// aggregation across storage nodes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FileLayout;
using services::FilePolicy;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = rng.next_byte();
  return out;
}

FilePolicy striped(std::uint8_t count, std::uint64_t unit) {
  FilePolicy p;
  p.stripe_count = count;
  p.stripe_size = unit;
  return p;
}

TEST(Striping, LocateArithmetic) {
  FileLayout layout;
  layout.policy = striped(4, 1000);
  // byte 0 -> stripe 0 @0; byte 999 -> stripe 0 @999; byte 1000 -> stripe 1 @0
  EXPECT_EQ(layout.locate(0), (std::pair<std::size_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(layout.locate(999), (std::pair<std::size_t, std::uint64_t>{0, 999}));
  EXPECT_EQ(layout.locate(1000), (std::pair<std::size_t, std::uint64_t>{1, 0}));
  EXPECT_EQ(layout.locate(3999), (std::pair<std::size_t, std::uint64_t>{3, 999}));
  // Second pass around the ring: byte 4000 -> stripe 0 @1000.
  EXPECT_EQ(layout.locate(4000), (std::pair<std::size_t, std::uint64_t>{0, 1000}));
  EXPECT_EQ(layout.locate(5500), (std::pair<std::size_t, std::uint64_t>{1, 1500}));
}

TEST(Striping, LayoutPlacesStripesOnDistinctNodes) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  const auto& layout = cluster.metadata().create("s", 256 * KiB, striped(4, 16 * KiB));
  ASSERT_EQ(layout.targets.size(), 4u);
  std::set<net::NodeId> nodes;
  for (const auto& c : layout.targets) nodes.insert(c.node);
  EXPECT_EQ(nodes.size(), 4u);
  EXPECT_TRUE(layout.striped());
}

TEST(Striping, RejectsBadParameters) {
  Cluster cluster;  // 4 nodes
  EXPECT_THROW(cluster.metadata().create("a", 100, striped(9, 1024)), std::invalid_argument);
  EXPECT_THROW(cluster.metadata().create("b", 100, striped(2, 0)), std::invalid_argument);
  FilePolicy bad = striped(2, 1024);
  bad.resiliency = dfs::Resiliency::kReplication;
  bad.repl_k = 2;
  EXPECT_THROW(cluster.metadata().create("c", 100, bad), std::invalid_argument);
}

TEST(Striping, FullWriteReadRoundTrip) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("s", 300000, striped(4, 16 * KiB));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  const Bytes data = random_bytes(300000, 1);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  Bytes got;
  client.read(layout, cap, static_cast<std::uint32_t>(data.size()),
              [&](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  EXPECT_EQ(got, data);
}

TEST(Striping, DataActuallySpreadsAcrossNodes) {
  ClusterConfig cfg;
  cfg.storage_nodes = 4;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("s", 256 * KiB, striped(4, 16 * KiB));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  bool ok = false;
  client.write(layout, cap, random_bytes(256 * KiB, 2), [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);
  // Each node holds exactly a quarter of the bytes.
  for (const auto& coord : layout.targets) {
    EXPECT_EQ(cluster.storage_by_node(coord.node).target().bytes_written(), 64 * KiB);
  }
}

TEST(Striping, UnalignedOffsetWriteCrossingUnits) {
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("s", 60000, striped(3, 4096));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  // Base contents, then an overwrite spanning several stripe units at an
  // unaligned offset.
  Bytes base = random_bytes(60000, 3);
  bool ok = false;
  client.write(layout, cap, base, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  const std::uint64_t off = 3000;
  const Bytes patch = random_bytes(20000, 4);
  std::copy(patch.begin(), patch.end(), base.begin() + static_cast<std::ptrdiff_t>(off));
  ok = false;
  client.write_at(layout, cap, off, patch, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  Bytes got;
  client.read(layout, cap, 60000, [&](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  EXPECT_EQ(got, base);
}

TEST(Striping, SubRangeRead) {
  ClusterConfig cfg;
  cfg.storage_nodes = 2;
  Cluster cluster(cfg);
  Client client(cluster, 0);
  const auto& layout = cluster.metadata().create("s", 40000, striped(2, 1024));
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kReadWrite);

  Bytes data = random_bytes(40000, 5);
  bool ok = false;
  client.write(layout, cap, data, [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  Bytes got;
  client.read_at(layout, cap, 1500, 5000, [&](Bytes d, TimePs) { got = std::move(d); });
  cluster.sim().run();
  EXPECT_EQ(got, Bytes(data.begin() + 1500, data.begin() + 6500));
}

TEST(Striping, AggregatesBandwidthOverSingleTarget) {
  // A large write striped over 4 nodes completes faster than the same write
  // to one node: the DMA/ingress path parallelizes even though the client
  // uplink is shared.
  const Bytes data = random_bytes(1 * MiB, 6);
  TimePs striped_at = 0, single_at = 0;
  {
    ClusterConfig cfg;
    cfg.storage_nodes = 4;
    Cluster cluster(cfg);
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("s", 1 * MiB, striped(4, 64 * KiB));
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    client.write(layout, cap, data, [&](bool, TimePs at) { striped_at = at; });
    cluster.sim().run();
  }
  {
    ClusterConfig cfg;
    cfg.storage_nodes = 4;
    Cluster cluster(cfg);
    Client client(cluster, 0);
    const auto& layout = cluster.metadata().create("s", 1 * MiB, FilePolicy{});
    const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
    client.write(layout, cap, data, [&](bool, TimePs at) { single_at = at; });
    cluster.sim().run();
  }
  EXPECT_LE(striped_at, single_at);
}

}  // namespace
}  // namespace nadfs
