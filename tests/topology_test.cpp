// Tests for the switch-level topology abstraction (net/topology.hpp) and
// the fabric forwarding path behind Network: routing tables, deterministic
// ECMP, per-hop store-and-forward timing, finite port buffering, and
// fabric-run determinism. The star's bit-identical digest pins live in
// determinism_test.cpp; here we verify the fabric against the same model.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace nadfs {
namespace {

using net::SwitchId;
using net::Topology;

// ------------------------------------------------------------- Topology

TEST(Topology, DefaultIsSingleSwitchStar) {
  const Topology t;
  EXPECT_TRUE(t.single_switch());
  EXPECT_EQ(t.switch_count(), 1u);
  EXPECT_EQ(t.leaf_of(0), 0u);
  EXPECT_EQ(t.leaf_of(41), 0u);
  EXPECT_FALSE(t.is_spine(0));
  const Topology star = Topology::star();
  EXPECT_TRUE(star.single_switch());
}

TEST(Topology, LeafSpineTablesAreMaterialized) {
  const Topology t = Topology::leaf_spine(3, 2);
  EXPECT_FALSE(t.single_switch());
  EXPECT_EQ(t.leaf_count(), 3u);
  EXPECT_EQ(t.spine_count(), 2u);
  EXPECT_EQ(t.switch_count(), 5u);
  EXPECT_FALSE(t.is_spine(2));
  EXPECT_TRUE(t.is_spine(3));
  EXPECT_TRUE(t.is_spine(4));
  EXPECT_EQ(t.spine_id(0), 3u);
  EXPECT_EQ(t.spine_id(1), 4u);
  // Nodes round-robin onto leaves by id.
  EXPECT_EQ(t.leaf_of(0), 0u);
  EXPECT_EQ(t.leaf_of(4), 1u);
  EXPECT_EQ(t.leaf_of(5), 2u);
  // Leaf tables: every spine toward a remote leaf, empty toward self.
  const auto& hops = t.next_hops(0, 1);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], 3u);
  EXPECT_EQ(hops[1], 4u);
  EXPECT_TRUE(t.next_hops(2, 2).empty());
  // Spine tables: the next hop toward a leaf is that leaf.
  EXPECT_EQ(t.spine_next_hop(3, 2), 2u);
  EXPECT_EQ(t.spine_next_hop(4, 0), 0u);
  // Range checking.
  EXPECT_THROW(t.next_hops(3, 0), std::out_of_range);   // spine is not a leaf
  EXPECT_THROW(t.spine_next_hop(1, 0), std::out_of_range);
  EXPECT_THROW(Topology::leaf_spine(0, 1), std::invalid_argument);
  EXPECT_THROW(Topology::leaf_spine(2, 0), std::invalid_argument);
  EXPECT_THROW(Topology().next_hops(0, 0), std::out_of_range);  // star has no tables
}

TEST(Topology, EcmpHashIsDeterministicAndSpreads) {
  // Pure function of the flow key: same inputs, same hash, across calls.
  EXPECT_EQ(Topology::ecmp_hash(1, 2, 99), Topology::ecmp_hash(1, 2, 99));
  EXPECT_NE(Topology::ecmp_hash(1, 2, 99), Topology::ecmp_hash(2, 1, 99));
  EXPECT_NE(Topology::ecmp_hash(1, 2, 99), Topology::ecmp_hash(1, 2, 100));

  const Topology t = Topology::leaf_spine(2, 4);
  // One src/dst pair, many messages: every spine takes a reasonable share.
  std::map<SwitchId, unsigned> share;
  for (std::uint64_t msg = 0; msg < 1000; ++msg) {
    const SwitchId s = t.spine_for(0, 1, msg);
    EXPECT_TRUE(t.is_spine(s));
    ++share[s];
  }
  ASSERT_EQ(share.size(), 4u);  // all spines used
  for (const auto& [spine, n] : share) {
    EXPECT_GT(n, 150u) << "spine " << spine;  // ~250 expected; generous envelope
  }
  // All packets of one message take one path.
  EXPECT_EQ(t.spine_for(0, 1, 7), t.spine_for(0, 1, 7));
  // Same-leaf flows never cross a spine.
  EXPECT_THROW(t.spine_for(0, 2, 1), std::logic_error);
}

// ------------------------------------------------------------ FabricNet

struct TimedRecorder : net::PacketSink {
  sim::Simulator* sim = nullptr;
  std::vector<std::pair<TimePs, net::Packet>> pkts;
  void on_packet(net::Packet&& p) override { pkts.emplace_back(sim->now(), std::move(p)); }
};

net::Packet mk(net::NodeId src, net::NodeId dst, std::uint64_t msg, Bytes data = {}) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.opcode = net::Opcode::kSend;
  p.msg_id = msg;
  p.data = std::move(data);
  return p;
}

/// n nodes on a given topology, every sink timestamped.
struct FabricRig {
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<TimedRecorder>> sinks;

  FabricRig(Topology topo, std::size_t n, std::size_t port_buffer_bytes = 0) : net(sim, [&] {
    net::NetworkConfig cfg;
    cfg.topology = std::move(topo);
    cfg.port_buffer_bytes = port_buffer_bytes;
    return cfg;
  }()) {
    for (std::size_t i = 0; i < n; ++i) {
      sinks.push_back(std::make_unique<TimedRecorder>());
      sinks.back()->sim = &sim;
      net.add_node(*sinks.back());
    }
  }
};

TEST(FabricNet, SameLeafTrafficStaysLocal) {
  // leaf_spine(2,1): nodes 0,2 land on leaf 0. Local traffic turns around
  // at the leaf with star timing and never touches the spine.
  FabricRig rig(Topology::leaf_spine(2, 1), 4);
  net::Packet p = mk(0, 2, 1, Bytes(512, 7));
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(p.wire_size());
  rig.net.inject(std::move(p));
  rig.sim.run();
  ASSERT_EQ(rig.sinks[2]->pkts.size(), 1u);
  const auto& cfg = rig.net.config();
  // node->leaf ser + link + switch, then leaf->node ser + link.
  EXPECT_EQ(rig.sinks[2]->pkts[0].first,
            2 * ser + 2 * cfg.link_latency + cfg.switch_latency);
  const SwitchId spine = rig.net.topology().spine_id(0);
  EXPECT_EQ(rig.net.hop_counters(spine).forwarded_pkts, 0u);
}

TEST(FabricNet, CrossLeafTakesStoreAndForwardHops) {
  // 0 (leaf 0) -> 1 (leaf 1): node->leaf, leaf->spine, spine->leaf,
  // leaf->node. Four serializations, four link hops, three switch visits.
  FabricRig rig(Topology::leaf_spine(2, 1), 4);
  net::Packet p = mk(0, 1, 1, Bytes(512, 7));
  const std::size_t wire = p.wire_size();
  const TimePs ser = rig.net.config().link_bandwidth.transfer_time(wire);
  rig.net.inject(std::move(p));
  rig.sim.run();
  ASSERT_EQ(rig.sinks[1]->pkts.size(), 1u);
  const auto& cfg = rig.net.config();
  EXPECT_EQ(rig.sinks[1]->pkts[0].first,
            4 * ser + 4 * cfg.link_latency + 3 * cfg.switch_latency);
  // Every switch on the path accounted the hop.
  const SwitchId spine = rig.net.topology().spine_id(0);
  EXPECT_EQ(rig.net.hop_counters(0).forwarded_pkts, 1u);
  EXPECT_EQ(rig.net.hop_counters(spine).forwarded_pkts, 1u);
  EXPECT_EQ(rig.net.hop_counters(1).forwarded_pkts, 1u);
  EXPECT_EQ(rig.net.hop_counters(0).forwarded_bytes, wire);
  EXPECT_EQ(rig.net.hop_counters(spine).forwarded_bytes, wire);
}

TEST(FabricNet, EcmpSpreadsMessagesAcrossSpines) {
  FabricRig rig(Topology::leaf_spine(2, 2), 4);
  const unsigned kMsgs = 64;
  for (std::uint64_t m = 1; m <= kMsgs; ++m) rig.net.inject(mk(0, 1, m, Bytes(64, 1)));
  rig.sim.run();
  EXPECT_EQ(rig.sinks[1]->pkts.size(), kMsgs);
  const auto& s0 = rig.net.hop_counters(rig.net.topology().spine_id(0));
  const auto& s1 = rig.net.hop_counters(rig.net.topology().spine_id(1));
  EXPECT_EQ(s0.forwarded_pkts + s1.forwarded_pkts, kMsgs);
  EXPECT_GT(s0.forwarded_pkts, 0u);
  EXPECT_GT(s1.forwarded_pkts, 0u);
}

TEST(FabricNet, FinitePortBufferTailDrops) {
  // Three sources on leaf 0 burst at one destination behind leaf 1 through
  // a single spine; the trunk-up port buffer holds one packet's worth of
  // queueing, so the third simultaneous arrival is tail-dropped.
  net::Packet probe = mk(0, 1, 1, Bytes(1024, 5));
  const std::size_t wire = probe.wire_size();
  FabricRig rig(Topology::leaf_spine(2, 1), 6, /*port_buffer_bytes=*/wire);
  for (net::NodeId src : {net::NodeId{0}, net::NodeId{2}, net::NodeId{4}}) {
    rig.net.inject(mk(src, 1, 100 + src, Bytes(1024, 5)));
  }
  rig.sim.run();
  EXPECT_EQ(rig.sinks[1]->pkts.size(), 2u);
  EXPECT_EQ(rig.net.fault_counters().buffer_drops, 1u);
  EXPECT_EQ(rig.net.hop_counters(0).buffer_drops, 1u);
  EXPECT_EQ(rig.net.fault_counters().trunk_drops, 0u);
  // Unbounded buffering (0) delivers everything.
  FabricRig deep(Topology::leaf_spine(2, 1), 6, 0);
  for (net::NodeId src : {net::NodeId{0}, net::NodeId{2}, net::NodeId{4}}) {
    deep.net.inject(mk(src, 1, 100 + src, Bytes(1024, 5)));
  }
  deep.sim.run();
  EXPECT_EQ(deep.sinks[1]->pkts.size(), 3u);
  EXPECT_EQ(deep.net.fault_counters().buffer_drops, 0u);
}

TEST(FabricNet, TrunkDownWindowDropsThenRecovers) {
  FabricRig rig(Topology::leaf_spine(2, 1), 4);
  const SwitchId spine = rig.net.topology().spine_id(0);
  net::FaultPlan plan;
  plan.trunk_down(0, spine, us(1), us(3));
  rig.net.install_faults(plan);
  rig.sim.schedule(us(2), [&] { rig.net.inject(mk(0, 1, 1, Bytes(64, 1))); });  // cut
  rig.sim.schedule(us(4), [&] { rig.net.inject(mk(0, 1, 2, Bytes(64, 1))); });  // healed
  rig.sim.run();
  EXPECT_EQ(rig.sinks[1]->pkts.size(), 1u);
  EXPECT_EQ(rig.sinks[1]->pkts[0].second.msg_id, 2u);
  EXPECT_EQ(rig.net.fault_counters().trunk_drops, 1u);
  EXPECT_EQ(rig.net.hop_counters(0).trunk_drops, 1u);
}

TEST(FabricNet, FabricRunsAreDeterministic) {
  // Same traffic on the same fabric twice: identical arrival sequences and
  // per-hop counters (FNV-1a over everything observable).
  auto run = [] {
    FabricRig rig(Topology::leaf_spine(3, 2), 9, 64 * 1024);
    for (std::uint64_t m = 1; m <= 40; ++m) {
      const net::NodeId src = static_cast<net::NodeId>(m % 9);
      const net::NodeId dst = static_cast<net::NodeId>((m * 5) % 9);
      if (src == dst) continue;
      rig.net.inject(mk(src, dst, m, Bytes(256 + (m % 4) * 128, 9)));
    }
    rig.sim.run();
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const auto& sink : rig.sinks) {
      for (const auto& [at, pkt] : sink->pkts) {
        mix(at);
        mix(pkt.msg_id);
        mix(pkt.data.size());
      }
    }
    for (SwitchId sw = 0; sw < rig.net.topology().switch_count(); ++sw) {
      mix(rig.net.hop_counters(sw).forwarded_pkts);
      mix(rig.net.hop_counters(sw).forwarded_bytes);
      mix(rig.net.hop_counters(sw).buffer_drops);
    }
    return h;
  };
  EXPECT_EQ(run(), run());
}

TEST(FabricNet, LateAddedNodesRegisterMetricCells) {
  // Regression: bind_metrics used to snapshot nodes_ at call time, so a
  // node added afterwards had no delivered-bytes cell in the registry.
  sim::Simulator sim;
  net::Network net{sim};
  TimedRecorder a, b;
  a.sim = b.sim = &sim;
  net.add_node(a);
  obs::MetricRegistry reg;
  net.bind_metrics(reg, "net");
  EXPECT_EQ(reg.snapshot().count("net.node1.delivered_bytes"), 0u);
  net.add_node(b);  // after binding
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.count("net.node1.delivered_bytes"), 1u);
  EXPECT_EQ(snap["net.node1.delivered_bytes"], 0);
  net.inject(mk(0, 1, 1, Bytes(100, 2)));
  sim.run();
  snap = reg.snapshot();
  EXPECT_EQ(snap["net.node1.delivered_bytes"], 100);
}

}  // namespace
}  // namespace nadfs
