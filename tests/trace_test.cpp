// Tests of the handler-execution trace sink and its device integration.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "pspin/trace.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

TEST(TraceSink, RecordsAndAggregates) {
  pspin::TraceSink sink;
  sink.record({1, 0, 3, spin::HandlerType::kHeader, 7, 0, 120, ns(100), ns(311)});
  sink.record({1, 0, 4, spin::HandlerType::kPayload, 7, 1, 55, ns(300), ns(392)});
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.busy_time(), ns(211) + ns(92));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ChromeJsonShape) {
  pspin::TraceSink sink;
  sink.record({2, 1, 5, spin::HandlerType::kCompletion, 9, 3, 66, us(1), us(2)});
  std::ostringstream out;
  sink.export_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"CH\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1005"), std::string::npos);
  EXPECT_NE(json.find("\"instr\":66"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceSink, EmptyExportIsValid) {
  pspin::TraceSink sink;
  std::ostringstream out;
  sink.export_chrome_json(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\":[]}");
}

TEST(TraceSink, DeviceIntegrationRecordsEveryHandler) {
  Cluster cluster;
  Client client(cluster, 0);
  pspin::TraceSink sink;
  const auto& layout = cluster.metadata().create("o", 64 * KiB, FilePolicy{});
  cluster.storage_by_node(layout.targets[0].node).pspin().set_trace(&sink);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  Rng rng(1);
  Bytes data(10000);
  for (auto& b : data) b = rng.next_byte();
  client.write(layout, cap, data, [](bool, TimePs) {});
  cluster.sim().run();

  // 10000 B -> 5 packets: 1 HH + 5 PH + 1 CH = 7 handler executions.
  ASSERT_EQ(sink.size(), 7u);
  unsigned hh = 0, ph = 0, ch = 0;
  for (const auto& r : sink.records()) {
    EXPECT_LT(r.start, r.end);
    EXPECT_LT(r.cluster, 4u);
    EXPECT_LT(r.hpu, 8u);
    switch (r.type) {
      case spin::HandlerType::kHeader: ++hh; break;
      case spin::HandlerType::kPayload: ++ph; break;
      case spin::HandlerType::kCompletion: ++ch; break;
    }
  }
  EXPECT_EQ(hh, 1u);
  EXPECT_EQ(ph, 5u);
  EXPECT_EQ(ch, 1u);
}

TEST(TraceSink, DetachedDeviceRecordsNothing) {
  Cluster cluster;
  Client client(cluster, 0);
  pspin::TraceSink sink;
  const auto& layout = cluster.metadata().create("o", 8 * KiB, FilePolicy{});
  auto& node = cluster.storage_by_node(layout.targets[0].node);
  node.pspin().set_trace(&sink);
  node.pspin().set_trace(nullptr);  // detach again
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  client.write(layout, cap, Bytes(1024, 1), [](bool, TimePs) {});
  cluster.sim().run();
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace nadfs
