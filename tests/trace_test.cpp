// Tests of the handler-execution trace sink and its device integration.
#include <gtest/gtest.h>

#include <sstream>

#include <set>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "pspin/trace.hpp"
#include "services/client.hpp"
#include "services/cluster.hpp"

namespace nadfs {
namespace {

using services::Client;
using services::Cluster;
using services::ClusterConfig;
using services::FilePolicy;

TEST(TraceSink, RecordsAndAggregates) {
  pspin::TraceSink sink;
  sink.record({1, 0, 3, spin::HandlerType::kHeader, 7, 0, 120, ns(100), ns(311)});
  sink.record({1, 0, 4, spin::HandlerType::kPayload, 7, 1, 55, ns(300), ns(392)});
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.busy_time(), ns(211) + ns(92));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, ChromeJsonShape) {
  pspin::TraceSink sink;
  sink.record({2, 1, 5, spin::HandlerType::kCompletion, 9, 3, 66, us(1), us(2)});
  std::ostringstream out;
  sink.export_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"CH\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1005"), std::string::npos);
  EXPECT_NE(json.find("\"instr\":66"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceSink, EmptyExportIsValid) {
  pspin::TraceSink sink;
  std::ostringstream out;
  sink.export_chrome_json(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\":[]}");
}

TEST(TraceSink, DeviceIntegrationRecordsEveryHandler) {
  Cluster cluster;
  Client client(cluster, 0);
  pspin::TraceSink sink;
  const auto& layout = cluster.metadata().create("o", 64 * KiB, FilePolicy{});
  cluster.storage_by_node(layout.targets[0].node).pspin().set_trace(&sink);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);

  Rng rng(1);
  Bytes data(10000);
  for (auto& b : data) b = rng.next_byte();
  client.write(layout, cap, data, [](bool, TimePs) {});
  cluster.sim().run();

  // 10000 B -> 5 packets: 1 HH + 5 PH + 1 CH = 7 handler executions.
  ASSERT_EQ(sink.size(), 7u);
  unsigned hh = 0, ph = 0, ch = 0;
  for (const auto& r : sink.records()) {
    EXPECT_LT(r.start, r.end);
    EXPECT_LT(r.cluster, 4u);
    EXPECT_LT(r.hpu, 8u);
    switch (r.type) {
      case spin::HandlerType::kHeader: ++hh; break;
      case spin::HandlerType::kPayload: ++ph; break;
      case spin::HandlerType::kCompletion: ++ch; break;
    }
  }
  EXPECT_EQ(hh, 1u);
  EXPECT_EQ(ph, 5u);
  EXPECT_EQ(ch, 1u);
}

TEST(TraceSink, ExportParsesAsStrictJson) {
  pspin::TraceSink sink;
  sink.record({1, 0, 3, spin::HandlerType::kHeader, 7, 0, 120, ns(100), ns(311)});
  sink.record({1, 2, 4, spin::HandlerType::kPayload, 7, 1, 55, ns(300), ns(392)});
  std::ostringstream out;
  sink.export_chrome_json(out);
  std::string err;
  EXPECT_TRUE(obs::json_valid(out.str(), &err)) << err;
}

// ---------------------------------------------- cross-layer span tracer

/// Schema check for the Chrome trace-event export: a strict-JSON object
/// with displayTimeUnit + traceEvents; "M" metadata events name processes
/// and threads, "X" complete events carry ts/dur and the correlation args.
void validate_chrome_trace(const std::string& json) {
  std::string err;
  const auto doc = obs::json_parse(json, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("displayTimeUnit"), nullptr);
  EXPECT_EQ(doc->find("displayTimeUnit")->str, "ns");
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  unsigned metadata = 0, complete = 0;
  for (const auto& ev : events->arr) {
    ASSERT_TRUE(ev.is_object());
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    if (ph->str == "M") {
      ++metadata;
      ASSERT_NE(ev.find("args"), nullptr);
      EXPECT_NE(ev.find("args")->find("name"), nullptr);
    } else {
      ASSERT_EQ(ph->str, "X");
      ++complete;
      ASSERT_NE(ev.find("ts"), nullptr);
      ASSERT_NE(ev.find("dur"), nullptr);
      ASSERT_NE(ev.find("name"), nullptr);
      const auto* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("corr"), nullptr);
    }
  }
  EXPECT_GT(metadata, 0u);
  EXPECT_GT(complete, 0u);
}

TEST(SpanTracer, ChromeExportIsSchemaValid) {
  obs::SpanTracer tracer;
  tracer.set_node_label(3, "storage0");
  tracer.record({3, obs::kLaneNicDma, "dma", "post_write", 42, 9, 0, 4096, ns(10), ns(50)});
  tracer.record({3, 2005, "handler", "PH", 42, 9, 1, 55, ns(60), ns(90)});
  tracer.record({3, obs::kLaneAck, "net", "ack", 42, 9, 0, 0, ns(95), ns(95)});  // instant
  validate_chrome_trace(tracer.to_chrome_json());
  EXPECT_EQ(tracer.spans_for(42).size(), 3u);
  EXPECT_EQ(tracer.spans_for(7).size(), 0u);
  EXPECT_EQ(obs::SpanTracer::lane_name(obs::kLaneUplink), "uplink");
  EXPECT_EQ(obs::SpanTracer::lane_name(2005), "hpu c2/5");
}

TEST(SpanTracer, WholeSystemWriteCorrelatesAcrossLayers) {
  // One replicated write, tracer attached cluster-wide: the client op span
  // and every NIC/network/HPU/ack span it caused share the op's greq as
  // their correlation id — the whole Fig. 2 path is one query away.
  if constexpr (!obs::kObsEnabled) {
    GTEST_SKIP() << "span hooks compiled out (NADFS_OBS=OFF)";
  }
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  Cluster cluster(cfg);
  obs::SpanTracer tracer;
  cluster.set_tracer(&tracer);
  Client client(cluster, 0);

  FilePolicy policy;
  policy.resiliency = dfs::Resiliency::kReplication;
  policy.repl_k = 3;
  const auto& layout = cluster.metadata().create("o", 16 * KiB, policy);
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  bool ok = false;
  client.write(layout, cap, Bytes(10000, 5), [&](bool o, TimePs) { ok = o; });
  cluster.sim().run();
  ASSERT_TRUE(ok);

  // The op span exists and carries the greq every other layer tagged.
  std::uint64_t greq = 0;
  for (const auto& s : tracer.spans()) {
    if (s.lane == obs::kLaneClientOp) greq = s.corr;
  }
  ASSERT_NE(greq, 0u);
  const auto chain = tracer.spans_for(greq);
  std::set<std::uint32_t> lanes;
  std::set<std::uint32_t> handler_nodes;
  for (const auto& s : chain) {
    lanes.insert(s.lane);
    if (s.lane < 9000) handler_nodes.insert(s.node);
    EXPECT_LE(s.start_ps, s.end_ps);
  }
  EXPECT_TRUE(lanes.count(obs::kLaneClientOp));
  EXPECT_TRUE(lanes.count(obs::kLaneNicDma));   // client NIC DMA
  EXPECT_TRUE(lanes.count(obs::kLaneUplink));   // node -> switch
  EXPECT_TRUE(lanes.count(obs::kLaneDownlink)); // switch -> node
  EXPECT_TRUE(lanes.count(obs::kLaneEgress));   // handler egress commands
  EXPECT_TRUE(lanes.count(obs::kLaneAck));      // DFS acks back at the client
  // Ring replication k=3: handlers ran on all three storage nodes.
  EXPECT_EQ(handler_nodes.size(), 3u);
  validate_chrome_trace(tracer.to_chrome_json());

  // Detaching stops recording.
  cluster.set_tracer(nullptr);
  const auto before = tracer.size();
  client.write(layout, cap, Bytes(1000, 6), [](bool, TimePs) {});
  cluster.sim().run();
  EXPECT_EQ(tracer.size(), before);
}

TEST(TraceSink, DetachedDeviceRecordsNothing) {
  Cluster cluster;
  Client client(cluster, 0);
  pspin::TraceSink sink;
  const auto& layout = cluster.metadata().create("o", 8 * KiB, FilePolicy{});
  auto& node = cluster.storage_by_node(layout.targets[0].node);
  node.pspin().set_trace(&sink);
  node.pspin().set_trace(nullptr);  // detach again
  const auto cap = cluster.metadata().grant(client.client_id(), layout, auth::Right::kWrite);
  client.write(layout, cap, Bytes(1024, 1), [](bool, TimePs) {});
  cluster.sim().run();
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace nadfs
