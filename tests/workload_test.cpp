// Workload-engine suite: samplers, arrival processes, pooled-client
// multiplexing, multi-tenant weighting, and the engine-level determinism
// digest. Everything runs against a real simulated cluster — these are the
// tests that keep bench/workloads.cpp honest.
#include <gtest/gtest.h>

#include <numeric>

#include "workload/workload.hpp"

namespace nadfs {
namespace {

using services::Cluster;
using services::ClusterConfig;
using workload::Engine;
using workload::EngineConfig;
using workload::TenantSpec;
using workload::Zipf;

// --------------------------------------------------------------- Zipf

std::vector<std::uint64_t> histogram(const Zipf& z, std::uint64_t seed, unsigned draws) {
  Rng rng(seed);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(z.n()), 0);
  for (unsigned i = 0; i < draws; ++i) ++counts[static_cast<std::size_t>(z.sample(rng))];
  return counts;
}

TEST(Zipf, ZeroSkewIsUniform) {
  const Zipf z(16, 0.0);
  const auto counts = histogram(z, 7, 32000);
  // 2000 expected per rank; all ranks within a loose 3x band.
  for (const auto c : counts) {
    EXPECT_GT(c, 1000u);
    EXPECT_LT(c, 4000u);
  }
}

TEST(Zipf, SkewConcentratesOnHeadRanks) {
  const Zipf z(64, 1.2);
  const auto counts = histogram(z, 7, 50000);
  EXPECT_GT(counts[0], counts[1]);                 // rank 0 is the hottest
  EXPECT_GT(counts[0], 8 * std::max<std::uint64_t>(1, counts[63]));
  // Head (top 8 of 64 ranks) takes more than half the draws at s = 1.2.
  const auto head = std::accumulate(counts.begin(), counts.begin() + 8, std::uint64_t{0});
  EXPECT_GT(head, 25000u);
}

TEST(Zipf, UnitExponentIsWellDefined) {
  // s == 1 blows up the closed-form approximation; the exact inverse-CDF
  // table must stay finite, normalized, and in range.
  const Zipf z(100, 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(rng), 100u);
  const auto counts = histogram(z, 11, 20000);
  EXPECT_GT(counts[0], counts[50]);
}

// ------------------------------------------------------- arrival processes

EngineConfig small_open_loop(double ops_per_s) {
  EngineConfig cfg;
  cfg.users = 1000;
  cfg.client_slots = 2;
  cfg.rate_ops_per_s = ops_per_s;
  cfg.duration = us(500);
  cfg.seed = 9;
  return cfg;
}

TenantSpec small_tenant() {
  TenantSpec t;
  t.name = "t";
  t.objects = 8;
  t.object_size = 32 * KiB;
  t.io_bytes = 1 * KiB;
  return t;
}

TEST(WorkloadEngine, OpenLoopOfferedTracksConfiguredRate) {
  ClusterConfig cc;
  cc.clients = 2;
  Cluster cluster(cc);
  // 4e5 ops/s over 500 us of simulated time: 200 arrivals expected.
  Engine engine(cluster, small_open_loop(4e5), {small_tenant()});
  engine.run();
  const auto arrivals = engine.stats().offered + engine.stats().control_ops;
  EXPECT_GT(arrivals, 120u);  // Poisson sd ~14; these bounds are ~5 sigma
  EXPECT_LT(arrivals, 300u);
}

TEST(WorkloadEngine, OpenLoopSameSeedReplaysIdentically) {
  std::uint64_t digests[2], offered[2];
  for (int run = 0; run < 2; ++run) {
    ClusterConfig cc;
    cc.clients = 2;
    Cluster cluster(cc);
    Engine engine(cluster, small_open_loop(2e5), {small_tenant()});
    engine.run();
    digests[run] = engine.digest();
    offered[run] = engine.stats().offered;
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(offered[0], offered[1]);
}

TEST(WorkloadEngine, SeedChangesTheSchedule) {
  std::uint64_t digests[2];
  for (int run = 0; run < 2; ++run) {
    ClusterConfig cc;
    cc.clients = 2;
    Cluster cluster(cc);
    auto cfg = small_open_loop(2e5);
    cfg.seed = run == 0 ? 5 : 6;
    Engine engine(cluster, cfg, {small_tenant()});
    engine.run();
    digests[run] = engine.digest();
  }
  EXPECT_NE(digests[0], digests[1]);
}

TEST(WorkloadEngine, DiurnalModulationIsDeterministicAndChangesArrivals) {
  auto run_with_amp = [](double amp) {
    ClusterConfig cc;
    cc.clients = 2;
    Cluster cluster(cc);
    auto cfg = small_open_loop(2e5);
    cfg.diurnal_amplitude = amp;
    cfg.diurnal_period = us(500);  // one full cycle over the horizon
    Engine engine(cluster, cfg, {small_tenant()});
    engine.run();
    return std::pair<std::uint64_t, std::uint64_t>(engine.digest(),
                                                   engine.stats().offered +
                                                       engine.stats().control_ops);
  };
  const auto flat = run_with_amp(0.0);
  const auto wave = run_with_amp(0.9);
  const auto wave2 = run_with_amp(0.9);
  EXPECT_EQ(wave, wave2);              // modulated runs replay identically
  EXPECT_NE(flat.first, wave.first);   // and differ from the flat schedule
  // Thinning preserves the mean rate: the modulated arrival count stays in
  // the same statistical band as the flat one (~100 expected).
  EXPECT_GT(wave.second, 40u);
  EXPECT_LT(wave.second, 220u);
}

TEST(WorkloadEngine, ClosedLoopDrainsAtTheHorizon) {
  ClusterConfig cc;
  cc.clients = 2;
  Cluster cluster(cc);
  EngineConfig cfg;
  cfg.users = 1000;
  cfg.client_slots = 2;
  cfg.rate_ops_per_s = 0.0;  // closed loop
  cfg.concurrency = 4;
  cfg.think_time = us(1);
  cfg.duration = us(300);
  cfg.seed = 4;
  Engine engine(cluster, cfg, {small_tenant()});
  engine.run();
  const auto& s = engine.stats();
  EXPECT_GT(s.offered + s.control_ops, 0u);
  // The loop self-throttles and drains: every issued op completed one way
  // or the other, nothing is left pending after run().
  EXPECT_EQ(s.offered, s.completed + s.failed);
}

TEST(WorkloadEngine, ClosedLoopConcurrencyScalesThroughput) {
  auto offered_at = [](unsigned concurrency) {
    ClusterConfig cc;
    cc.clients = 2;
    Cluster cluster(cc);
    EngineConfig cfg;
    cfg.users = 1000;
    cfg.client_slots = 2;
    cfg.concurrency = concurrency;
    cfg.think_time = us(1);
    cfg.duration = us(300);
    cfg.seed = 4;
    Engine engine(cluster, cfg, {small_tenant()});
    engine.run();
    return engine.stats().offered + engine.stats().control_ops;
  };
  EXPECT_GT(offered_at(8), 2 * offered_at(1));
}

// ----------------------------------------------- pooled users and tenants

TEST(WorkloadEngine, MillionUsersMultiplexOverTwoClientSlots) {
  ClusterConfig cc;
  cc.clients = 2;  // the whole population shares two live endpoints
  Cluster cluster(cc);
  auto cfg = small_open_loop(2e5);
  cfg.users = 1'000'000;
  cfg.client_slots = 64;  // clamped to the cluster's two client nodes
  Engine engine(cluster, cfg, {small_tenant()});
  engine.run();
  EXPECT_GT(engine.stats().completed, 0u);
  EXPECT_EQ(engine.stats().failed, 0u);  // light load, nothing saturates
}

TEST(WorkloadEngine, TenantWeightsSplitTraffic) {
  ClusterConfig cc;
  cc.clients = 2;
  Cluster cluster(cc);
  TenantSpec heavy = small_tenant();
  heavy.name = "heavy";
  heavy.weight = 9.0;
  TenantSpec light = small_tenant();
  light.name = "light";
  light.weight = 1.0;
  Engine engine(cluster, small_open_loop(4e5), {heavy, light});
  engine.run();
  const auto& per = engine.stats().per_tenant_ops;
  ASSERT_EQ(per.size(), 2u);
  EXPECT_GT(per[0], 0u);
  EXPECT_GT(per[1], 0u);
  // 9:1 weights; allow wide sampling noise but demand a clear skew.
  EXPECT_GT(per[0], 4 * per[1]);
}

TEST(WorkloadEngine, SetupPopulatesTheNamespaceOnce) {
  ClusterConfig cc;
  cc.clients = 2;
  Cluster cluster(cc);
  auto tenant = small_tenant();
  tenant.objects = 5;
  Engine engine(cluster, small_open_loop(1e5), {tenant});
  engine.setup();
  EXPECT_EQ(cluster.metadata().list("t/").size(), 5u);
  engine.run();  // run() must not re-create (create would now return kExists)
  EXPECT_EQ(cluster.metadata().list("t/").size(), 5u);
}

TEST(WorkloadEngine, TypedErrorsSurfaceInFailureCounts) {
  // An append-only tenant against tiny objects: the tails fill up and
  // further reservations fail kBadArg — the typed error comes back through
  // the engine's by_error histogram instead of vanishing into a bool.
  ClusterConfig cc;
  cc.clients = 2;
  Cluster cluster(cc);
  TenantSpec tenant = small_tenant();
  tenant.objects = 2;
  tenant.object_size = 4 * KiB;
  tenant.io_bytes = 2 * KiB;
  tenant.mix = {0.0, 0.0, 1.0, 0.0};  // append-only
  Engine engine(cluster, small_open_loop(4e6), {tenant});
  engine.run();
  const auto& s = engine.stats();
  EXPECT_GT(s.failed, 0u);
  EXPECT_EQ(s.by_error[static_cast<std::size_t>(dfs::DfsError::kBadArg)], s.failed);
  EXPECT_EQ(s.completed + s.failed, s.offered);
}

}  // namespace
}  // namespace nadfs
